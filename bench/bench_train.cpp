// Training throughput: the tensor-batched Algorithm-1 trainer (one graph
// per step over the whole mask batch, arena-recycled storage, pruned
// batched FFT passes — DESIGN.md §8) against the verbatim pre-batching
// per-mask loop, in optimizer steps per second on identical data.
//
// The acceptance number is recorded in bench/baselines/train_throughput.csv
// (`batched >= 1.3x legacy` on the 1-core CI box) and gated by
// bench/check_baselines.py.  Both loops produce bit-identical loss
// trajectories (pinned in tests/test_nitho.cpp), so the comparison is pure
// overhead: graph/allocation amortization and fused batched FFT passes,
// not arithmetic shortcuts and not threads.
//
// The two loops run as `--repeats` interleaved legacy/batched rounds
// (fresh identically-seeded models per round) and the ratio pools the
// rounds' total steps over total seconds — back-to-back single windows put
// any slow drift of the box entirely into one side of the ratio, while
// interleaving cancels it.
//
// Flags: the shared set (--train N --nitho-epochs N --seed N) plus
// --batch N (default 4), --train-px N (default 64) and --repeats N
// (default 3).

#include <algorithm>
#include <cstdio>
#include <string>

#include "common.hpp"
#include "common/flags.hpp"
#include "common/timer.hpp"
#include "io/csv.hpp"
#include "train_ref.hpp"

namespace nitho::bench {
namespace {

struct Measurement {
  double seconds = 0.0;
  TrainStats stats;
};

Measurement measure(const char* what, NithoModel& model,
                    const TrainingSet& set, const NithoTrainConfig& cfg,
                    bool batched) {
  WallTimer t;
  Measurement m;
  m.stats = batched ? train_nitho(model, set, cfg)
                    : legacy_train_nitho(model, set, cfg);
  m.seconds = t.seconds();
  std::printf(
      "[train] %-16s %3d steps in %6.2fs  -> %6.2f steps/s  loss %.3e\n",
      what, m.stats.steps, m.seconds, m.stats.steps / m.seconds,
      m.stats.final_loss);
  std::fflush(stdout);
  return m;
}

int run(const Flags& flags) {
  log_simd_arm();
  BenchConfig cfg = BenchConfig::from_flags(flags);
  const int batch = flags.get_int("batch", 4);
  const int train_px = flags.get_int("train-px", 64);
  // Gated-bench defaults stay small: the ratio, not the absolute rate, is
  // what the baseline tracks.
  cfg.train_count = flags.get_int("train", 8);
  const int epochs = flags.get_int("nitho-epochs", 6);

  const int repeats = std::max(1, flags.get_int("repeats", 3));

  BenchEnv env(cfg);
  const Dataset& train = env.train_set(DatasetKind::B2v);

  NithoTrainConfig tc;
  tc.epochs = epochs;
  tc.batch = batch;
  tc.train_px = train_px;
  tc.seed = cfg.seed;

  NithoConfig mc = env.nitho_config();
  auto make_model = [&] {
    return NithoModel(mc, env.litho().tile_nm,
                      env.litho().optics.wavelength_nm,
                      env.litho().optics.na);
  };
  NithoModel probe = make_model();
  const TrainingSet set = prepare_training_set(
      sample_ptrs(train), probe.kernel_dim(), tc.train_px);
  std::printf(
      "[train] %d samples, batch %d, %d epochs, kdim %d, px %d, %d rounds\n",
      set.size(), batch, epochs, set.kernel_dim, set.train_px, repeats);

  // Warm the FFT plan caches and the page pool on a throwaway epoch each so
  // neither loop pays first-touch costs inside its timed window.
  {
    NithoTrainConfig warm = tc;
    warm.epochs = 1;
    NithoModel wa(mc, env.litho().tile_nm, env.litho().optics.wavelength_nm,
                  env.litho().optics.na);
    NithoModel wb(mc, env.litho().tile_nm, env.litho().optics.wavelength_nm,
                  env.litho().optics.na);
    legacy_train_nitho(wa, set, warm);
    train_nitho(wb, set, warm);
  }

  // Interleaved rounds: identically-seeded fresh models per round, totals
  // pooled per mode so slow drift of the box hits both sides alike.
  double lsteps = 0.0, lsecs = 0.0, bsteps = 0.0, bsecs = 0.0;
  double fwd_s = 0.0, bwd_s = 0.0, step_s = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    NithoModel legacy_model = make_model();
    NithoModel batched_model = make_model();
    const Measurement lm =
        measure("legacy_per_mask", legacy_model, set, tc, /*batched=*/false);
    const Measurement bm =
        measure("batched", batched_model, set, tc, /*batched=*/true);
    lsteps += lm.stats.steps;
    lsecs += lm.seconds;
    bsteps += bm.stats.steps;
    bsecs += bm.seconds;
    fwd_s += bm.stats.forward_seconds;
    bwd_s += bm.stats.backward_seconds;
    step_s += bm.stats.step_seconds;
  }
  const double legacy_rate = lsteps / lsecs;
  const double batched_rate = bsteps / bsecs;
  std::printf("[train] batched phase split: fwd %.2fs bwd %.2fs step %.2fs\n",
              fwd_s, bwd_s, step_s);
  std::printf("[train] batched = %.2fx legacy steps/s\n",
              batched_rate / legacy_rate);

  CsvWriter csv(out_dir() + "/train_throughput.csv",
                {"mode", "steps_per_s", "fwd_s", "bwd_s", "step_s",
                 "vs_legacy"});
  csv.row({"legacy_per_mask", fmt(legacy_rate, 2), "", "", "", "1.00"});
  csv.row({"batched", fmt(batched_rate, 2), fmt(fwd_s, 2), fmt(bwd_s, 2),
           fmt(step_s, 2), fmt(batched_rate / legacy_rate, 2)});
  return 0;
}

}  // namespace
}  // namespace nitho::bench

int main(int argc, char** argv) {
  const nitho::Flags flags(argc, argv);
  return nitho::bench::run(flags);
}
