// Extension ablation: RFF bandwidth (sigma) vs generalization.
//
// The paper fixes one Gaussian-RFF encoding; this repo's reproduction found
// the bandwidth sigma is the lever that trades in-distribution fit against
// out-of-distribution transfer: small sigma = smooth field that interpolates
// kernel values at frequencies the training masks under-constrain, large
// sigma = sharper fit that overfits the training family's spectral support.
// This bench quantifies that trade-off (train on B2v, test on B2v and B2m).

#include <cstdio>

#include "common.hpp"
#include "io/csv.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int train_n = flags.get_int("train", 24);
  const int test_n = flags.get_int("test", 4);
  const int epochs = flags.get_int("nitho-epochs", 80);
  std::printf("== Ablation: RFF bandwidth sigma vs OOD transfer ==\n\n");

  LithoConfig lc;
  lc.tile_nm = 512;
  lc.raster_px = 512;
  lc.analysis_px = 64;
  lc.sim_px = 32;
  lc.spectrum_crop = 31;
  GoldenEngine engine(lc);
  const Dataset train = engine.make_dataset(DatasetKind::B2v, train_n, 1);
  const Dataset id_test = engine.make_dataset(DatasetKind::B2v, test_n, 2);
  const Dataset ood_test = engine.make_dataset(DatasetKind::B2m, test_n, 3);

  CsvWriter csv(out_dir() + "/ablation_rff_sigma.csv",
                {"sigma", "id_psnr_db", "ood_psnr_db"});
  TablePrinter tp({"sigma", "ID PSNR", "OOD PSNR"}, 12);
  for (double sigma : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    NithoConfig mc;
    mc.rank = 14;
    mc.encoding.features = 64;
    mc.encoding.sigma = sigma;
    mc.hidden = 32;
    NithoModel model(mc, lc.tile_nm, lc.optics.wavelength_nm, lc.optics.na);
    NithoTrainConfig tc;
    tc.epochs = epochs;
    tc.batch = 4;
    tc.train_px = 32;
    train_nitho(model, sample_ptrs(train), tc);

    auto avg = [&](const Dataset& ds) {
      double acc = 0.0;
      for (const Sample& s : ds.samples) {
        acc += psnr(s.aerial, predict_aerial(model, s, 64));
      }
      return acc / static_cast<double>(ds.samples.size());
    };
    const double id = avg(id_test), ood = avg(ood_test);
    tp.row({fmt(sigma, 1), fmt(id, 2), fmt(ood, 2)});
    csv.row({fmt(sigma, 2), fmt(id, 3), fmt(ood, 3)});
  }
  tp.rule();
  std::printf(
      "\nExpected shape: ID PSNR is flat-to-rising in sigma while OOD PSNR\n"
      "peaks near sigma ~ 1 and decays — the smoothness prior of the\n"
      "coordinate field is what buys mask-family generalization.\n");
  return 0;
}
