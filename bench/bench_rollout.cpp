// Hot-swap tail latency: served p99 across rollout kernel swaps
// (DESIGN.md §11).
//
// The rollout tournament (src/rollout/) publishes each round's winner into
// the live LithoServer via swap_kernels() while traffic is in flight.
// Capture-at-submit makes that *correct* by construction — a request
// computes on the snapshot it captured at submit, so results are bit-exact
// per generation (pinned in tests/test_rollout.cpp).  What is left to
// measure is *latency*: does a swap landing mid-stream put a spike into the
// served tail?
//
// Three phases over the same synthesized workload (kernel values do not
// affect runtime, mirroring bench_serve):
//
//   capacity_open_loop  unpaced open loop, no swaps — measures what the box
//                       can do; used only to size the paced phases' rate.
//   steady_open_loop    open loop at ~60% of capacity, no swaps: the served
//                       tail with the snapshot never changing.
//   across_swap         the same paced load with several swap_kernels()
//                       calls landing mid-stream from a separate thread
//                       (the rollout controller's position).  Replacement
//                       snapshots are pre-built and pre-warmed before the
//                       load starts — the discipline a deployment should
//                       use: FFT-plan/engine warm-up is paid off the
//                       serving path, so the measured cost is the
//                       publication itself (a per-shard pointer store under
//                       the snapshot mutex) plus whatever cold state the
//                       new snapshot still carries.
//
// Acceptance: across-swap p99 stays within 1.5x the steady p99.  The ratio
// (swap_p99_vs_steady) is recorded in bench/baselines/rollout_swap.csv and
// *ceiling*-gated by bench/check_baselines.py — smaller is better here,
// unlike the throughput ratios.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "io/csv.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "nitho/fast_litho.hpp"
#include "serve/server.hpp"

using namespace nitho;
using namespace nitho::bench;

namespace {

std::vector<Grid<cd>> synth_kernels(int rank, int kdim, Rng& rng) {
  std::vector<Grid<cd>> kernels;
  kernels.reserve(static_cast<std::size_t>(rank));
  for (int k = 0; k < rank; ++k) {
    Grid<cd> g(kdim, kdim);
    for (auto& z : g) z = cd(rng.normal(), rng.normal());
    kernels.push_back(std::move(g));
  }
  return kernels;
}

std::vector<Grid<double>> synth_masks(int count, int px, Rng& rng) {
  std::vector<Grid<double>> masks;
  masks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Grid<double> m(px, px, 0.0);
    for (int r = 0; r < 6; ++r) {
      const int h = rng.randint(2, px / 4), w = rng.randint(2, px / 4);
      const int r0 = rng.randint(0, px - h), c0 = rng.randint(0, px - w);
      for (int y = r0; y < r0 + h; ++y)
        for (int x = c0; x < c0 + w; ++x) m(y, x) = 1.0;
    }
    masks.push_back(std::move(m));
  }
  return masks;
}

using serve::latency_str;

struct PhaseResult {
  double offered_rps = 0.0;
  double goodput_rps = 0.0;
  double p99_us = 0.0;
  std::uint64_t latency_samples = 0;
  std::uint64_t generation = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  log_simd_arm();
  const int reqs = flags.get_int("reqs", 4096);
  const int mask_px = flags.get_int("mask-px", 32);
  const int out_px = flags.get_int("out-px", 16);
  const int rank = flags.get_int("rank", 8);
  const int kdim = flags.get_int("kdim", 9);
  const int shards = flags.get_int("shards", 1);
  const int max_batch = flags.get_int("max-batch", 16);
  const int max_delay_us = flags.get_int("max-delay-us", 300);
  const int swaps = flags.get_int("swaps", 4);
  // 60% of capacity: loaded enough that batching is exercised, light enough
  // that queueing delay does not drown the swap signal in the tail.
  const double rate_frac = flags.get_double("rate-frac", 0.6);

  std::printf("== Rollout hot-swap: served p99 across swap_kernels ==\n");
  std::printf("reqs=%d mask=%dpx out=%dpx rank=%d kdim=%d shards=%d "
              "max_batch=%d max_delay=%dus swaps=%d\n\n",
              reqs, mask_px, out_px, rank, kdim, shards, max_batch,
              max_delay_us, swaps);

  Rng rng(20260807);
  const std::vector<Grid<cd>> kernels = synth_kernels(rank, kdim, rng);
  const std::vector<Grid<double>> masks = synth_masks(256, mask_px, rng);

  const auto serve_options = [&] {
    serve::ServeOptions opts;
    opts.shards = shards;
    opts.queue_capacity = 64;
    opts.batch.max_batch = max_batch;
    opts.batch.max_delay = std::chrono::microseconds(max_delay_us);
    return opts;
  }();

  using Clock = std::chrono::steady_clock;

  // rate == 0: unpaced.  swap_count > 0: a swapper thread publishes that
  // many pre-warmed replacement snapshots at even fractions of the paced
  // injection window (the rollout controller's position: concurrent with
  // submits, never synchronized with them).
  const auto run_phase = [&](double rate, int swap_count) {
    serve::LithoServer server(FastLitho{std::vector<Grid<cd>>(kernels)},
                              serve_options);
    (void)server.submit(masks[0], out_px).get();  // warm engines + plans

    // Pre-build and pre-warm the replacement snapshots off the serving
    // path; each swap then costs only the publication.  Distinct kernel
    // values per generation keep this honest — a swap to an identical
    // snapshot could hide value-dependent caching.
    std::vector<FastLitho> fresh;
    fresh.reserve(static_cast<std::size_t>(swap_count));
    for (int j = 0; j < swap_count; ++j) {
      FastLitho f{synth_kernels(rank, kdim, rng)};
      (void)f.aerial_from_mask(masks[0], out_px);
      fresh.push_back(std::move(f));
    }

    const double expect_secs = rate > 0.0 ? reqs / rate : 0.5;
    const auto start = Clock::now();
    std::thread swapper;
    if (swap_count > 0) {
      swapper = std::thread([&] {
        for (int j = 0; j < swap_count; ++j) {
          // Swaps land inside the first 80% of the injection window so each
          // publication has live traffic on both sides of it.
          const auto due = start + std::chrono::microseconds(
              static_cast<std::int64_t>((j + 1) * 0.8 * expect_secs * 1e6 /
                                        swap_count));
          std::this_thread::sleep_until(due);
          (void)server.swap_kernels(std::move(fresh[static_cast<std::size_t>(j)]));
        }
      });
    }

    std::vector<std::future<Grid<double>>> futs;
    futs.reserve(static_cast<std::size_t>(reqs));
    for (int i = 0; i < reqs; ++i) {
      // Open loop: request i is due at a fixed offset from the start.
      // Pacing is checked once per small burst (see bench_serve for why).
      if (rate > 0.0 && i % 8 == 0) {
        const auto due = start + std::chrono::microseconds(
                                     static_cast<std::int64_t>(i * 1e6 / rate));
        if (Clock::now() < due) std::this_thread::sleep_until(due);
      }
      futs.push_back(server.submit(
          masks[static_cast<std::size_t>(i) % masks.size()], out_px));
    }
    const double inject_secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    // Drain: completed == submitted means the queue and batcher are empty.
    while (true) {
      const serve::ShardStats st = server.stats();
      if (st.completed == st.submitted) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double drain_secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (swapper.joinable()) swapper.join();
    for (auto& f : futs) (void)f.get();

    const serve::ShardStats st = server.stats();
    PhaseResult r;
    r.offered_rps = reqs / inject_secs;
    r.goodput_rps = reqs / drain_secs;
    r.p99_us = st.p99_latency_us;
    r.latency_samples = st.latency_samples;
    r.generation = st.kernel_generation;
    return r;
  };

  // Each paced phase runs twice and keeps the lower p99: on a shared box a
  // single host stall lands squarely in the tail, and the gated number is a
  // ratio of two p99s that must not absorb that noise asymmetrically.
  const auto best_of = [](PhaseResult a, PhaseResult b) {
    return a.p99_us <= b.p99_us ? std::move(a) : std::move(b);
  };

  const PhaseResult cap = run_phase(/*rate=*/0.0, /*swap_count=*/0);
  const double rate = rate_frac * cap.goodput_rps;
  std::printf("capacity %.0f reqs/s -> pacing both phases at %.0f reqs/s\n\n",
              cap.goodput_rps, rate);

  // Interleaved (steady, swap, steady, swap) so slow drift on a shared box
  // — allocator warm-up, thermal ramp — lands on both phases evenly rather
  // than biasing whichever ran first.
  const PhaseResult steady_a = run_phase(rate, 0);
  const PhaseResult swap_a = run_phase(rate, swaps);
  const PhaseResult steady = best_of(steady_a, run_phase(rate, 0));
  const PhaseResult swap = best_of(swap_a, run_phase(rate, swaps));
  if (swap.generation != static_cast<std::uint64_t>(swaps)) {
    std::fprintf(stderr, "FATAL: expected generation %d after %d swaps, got %"
                 PRIu64 "\n", swaps, swaps, swap.generation);
    return 1;
  }

  const double ratio = swap.p99_us / steady.p99_us;
  TablePrinter tp({"Mode", "offered r/s", "goodput r/s", "p99", "gen"}, 16);
  tp.row({"capacity_open_loop", fmt(cap.offered_rps, 1),
          fmt(cap.goodput_rps, 1), latency_str(cap.p99_us, cap.latency_samples),
          "0"});
  tp.row({"steady_open_loop", fmt(steady.offered_rps, 1),
          fmt(steady.goodput_rps, 1),
          latency_str(steady.p99_us, steady.latency_samples), "0"});
  tp.row({"across_swap", fmt(swap.offered_rps, 1), fmt(swap.goodput_rps, 1),
          latency_str(swap.p99_us, swap.latency_samples), fmt(swaps, 0)});
  tp.rule();

  CsvWriter csv(out_dir() + "/rollout_swap.csv",
                {"mode", "offered_rps", "goodput_rps", "p99_us", "swaps",
                 "swap_p99_vs_steady"});
  csv.row({"capacity_open_loop", fmt(cap.offered_rps, 1),
           fmt(cap.goodput_rps, 1), fmt(cap.p99_us, 0), "0", ""});
  csv.row({"steady_open_loop", fmt(steady.offered_rps, 1),
           fmt(steady.goodput_rps, 1), fmt(steady.p99_us, 0), "0", "1.00"});
  csv.row({"across_swap", fmt(swap.offered_rps, 1), fmt(swap.goodput_rps, 1),
           fmt(swap.p99_us, 0), fmt(swaps, 0), fmt(ratio, 2)});

  std::printf(
      "\nRollout acceptance: p99 across %d hot-swaps is %.2fx the steady p99 "
      "(ceiling <= 1.5x).\n",
      swaps, ratio);
  return 0;
}
