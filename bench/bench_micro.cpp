// Microbenchmarks (google-benchmark): the computational primitives behind
// every experiment — FFTs, eigensolver, TCC build, SOCS imaging, CMLP
// forward/backward, convolution.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/spectral.hpp"
#include "math/hermitian_eig.hpp"
#include "nitho/cmlp.hpp"
#include "nitho/encoding.hpp"
#include "nitho/model.hpp"
#include "nitho/trainer.hpp"
#include "nn/gemm.hpp"
#include "nn/ops.hpp"
#include "nn/ops_conv.hpp"
#include "nn/optimizer.hpp"
#include "litho/engine.hpp"
#include "litho/simulator.hpp"
#include "optics/resolution.hpp"
#include "optics/socs.hpp"
#include "optics/tcc.hpp"
#include "train_ref.hpp"

namespace nitho {
namespace {

void BM_Fft1d(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<cd> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = cd(rng.normal(), rng.normal());
  const FftPlan<double>& plan = fft_plan_d(n);
  for (auto _ : state) {
    plan.forward(x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Fft1d)->Arg(64)->Arg(243)->Arg(256)->Arg(1024);

void BM_Fft2d(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Grid<cd> g(n, n);
  for (auto& v : g) v = cd(rng.normal(), rng.normal());
  for (auto _ : state) {
    fft2_inplace(g);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_Fft2d)->Arg(64)->Arg(128)->Arg(256);

void BM_FftCropCentered(benchmark::State& state) {
  Rng rng(3);
  Grid<double> img(1024, 1024);
  for (auto& v : img) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft2_crop_centered(img, 63));
  }
}
BENCHMARK(BM_FftCropCentered);

void BM_HermitianEigh(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  Grid<cd> a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = cd(rng.normal(), 0.0);
    for (int j = i + 1; j < n; ++j) {
      const cd v(rng.normal(), rng.normal());
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eigh(a));
  }
}
BENCHMARK(BM_HermitianEigh)->Arg(64)->Arg(225)->Unit(benchmark::kMillisecond);

void BM_TccBuild(benchmark::State& state) {
  OpticalSystem sys;
  const int kdim = kernel_dim(512, sys.wavelength_nm, sys.na);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_tcc(sys, 512, kdim));
  }
}
BENCHMARK(BM_TccBuild)->Unit(benchmark::kMillisecond);

void BM_SocsAerial(benchmark::State& state) {
  const int rank = static_cast<int>(state.range(0));
  OpticalSystem sys;
  const int kdim = kernel_dim(512, sys.wavelength_nm, sys.na);
  const Grid<cd> tcc = build_tcc(sys, 512, kdim);
  const SocsKernels socs = socs_decompose(tcc, kdim, 0.0, rank);
  Rng rng(5);
  Grid<cd> spec(kdim, kdim);
  for (auto& v : spec) v = cd(rng.normal() * 0.05, rng.normal() * 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(socs_aerial(socs.kernels, spec, 64));
  }
  state.SetLabel("rank=" + std::to_string(socs.rank()));
}
BENCHMARK(BM_SocsAerial)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_Fft2dWorkspace(benchmark::State& state) {
  // fft2_inplace with a reused workspace: the per-call column buffer and
  // Bluestein scratch disappear (compare against BM_Fft2d).
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Grid<cd> g(n, n);
  for (auto& v : g) v = cd(rng.normal(), rng.normal());
  Fft2Workspace ws;
  for (auto _ : state) {
    fft2_inplace(g, ws);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_Fft2dWorkspace)->Arg(64)->Arg(128)->Arg(256);

void BM_AerialEngineSingle(benchmark::State& state) {
  // Persistent engine, one spectrum per call (compare against
  // BM_SocsAerial, which pays transient-engine setup per call).
  const int rank = static_cast<int>(state.range(0));
  OpticalSystem sys;
  const int kdim = kernel_dim(512, sys.wavelength_nm, sys.na);
  const Grid<cd> tcc = build_tcc(sys, 512, kdim);
  const SocsKernels socs = socs_decompose(tcc, kdim, 0.0, rank);
  const AerialEngine engine(socs.kernels, 64);
  Rng rng(5);
  Grid<cd> spec(kdim, kdim);
  for (auto& v : spec) v = cd(rng.normal() * 0.05, rng.normal() * 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.aerial(spec));
  }
  state.SetLabel("rank=" + std::to_string(socs.rank()));
}
BENCHMARK(BM_AerialEngineSingle)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_AerialEngineBatch(benchmark::State& state) {
  // Eight spectra per engine sweep; items processed counts spectra so the
  // per-mask rate is directly comparable to BM_AerialEngineSingle.
  const int rank = static_cast<int>(state.range(0));
  OpticalSystem sys;
  const int kdim = kernel_dim(512, sys.wavelength_nm, sys.na);
  const Grid<cd> tcc = build_tcc(sys, 512, kdim);
  const SocsKernels socs = socs_decompose(tcc, kdim, 0.0, rank);
  const AerialEngine engine(socs.kernels, 64);
  Rng rng(5);
  std::vector<Grid<cd>> spectra(8, Grid<cd>(kdim, kdim));
  for (auto& spec : spectra) {
    for (auto& v : spec) v = cd(rng.normal() * 0.05, rng.normal() * 0.05);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.aerial_batch(spectra));
  }
  state.SetItemsProcessed(state.iterations() * 8);
  state.SetLabel("rank=" + std::to_string(socs.rank()) + " batch=8");
}
BENCHMARK(BM_AerialEngineBatch)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_CmlpForward(benchmark::State& state) {
  CmlpConfig cfg;
  cfg.in_features = 96;
  cfg.hidden = 48;
  cfg.blocks = 2;
  cfg.out = 24;
  Cmlp mlp(cfg);
  EncodingConfig ec;
  ec.features = 96;
  const nn::Tensor coords = encode_coordinates(29, 29, ec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.forward(nn::make_leaf(coords, false)));
  }
  state.SetLabel("29x29 coords");
}
BENCHMARK(BM_CmlpForward)->Unit(benchmark::kMillisecond);

void BM_CmlpTrainStep(benchmark::State& state) {
  CmlpConfig cfg;
  cfg.in_features = 96;
  cfg.hidden = 48;
  cfg.blocks = 2;
  cfg.out = 24;
  Cmlp mlp(cfg);
  EncodingConfig ec;
  ec.features = 96;
  const nn::Tensor coords = encode_coordinates(29, 29, ec);
  nn::Tensor target({29 * 29, 24, 2});
  Rng rng(6);
  target.randn(rng, 0.1f);
  nn::Adam opt(mlp.parameters(), 1e-3f);
  for (auto _ : state) {
    opt.zero_grad();
    nn::Var loss = nn::mse_loss(mlp.forward(nn::make_leaf(coords, false)), target);
    nn::backward(loss);
    opt.step();
    benchmark::DoNotOptimize(loss->value[0]);
  }
}
BENCHMARK(BM_CmlpTrainStep)->Unit(benchmark::kMillisecond);

// CMLP-shaped GEMM (the complex matmul splits into four of these): left
// operand dense or ReLU-sparse, kernel with or without the zero-skip
// branch.  The sweep decides which variant the batched training path keeps
// (see nn/gemm.hpp).
void gemm_bench(benchmark::State& state, bool skip_zeros, double zero_frac) {
  const std::int64_t m = 841, k = 96, n = 48;  // paper-scale CMLP layer
  Rng rng(8);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) {
    v = rng.uniform() < zero_frac ? 0.0f : static_cast<float>(rng.normal());
  }
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    if (skip_zeros) {
      nn::gemm_nn<true>(m, n, k, a.data(), b.data(), c.data(), false);
    } else {
      nn::gemm_nn<false>(m, n, k, a.data(), b.data(), c.data(), false);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}

void BM_GemmNNSkipZeros(benchmark::State& state) {
  gemm_bench(state, true, state.range(0) / 100.0);
  state.SetLabel("zeros=" + std::to_string(state.range(0)) + "%");
}
BENCHMARK(BM_GemmNNSkipZeros)->Arg(0)->Arg(50);

void BM_GemmNNDense(benchmark::State& state) {
  gemm_bench(state, false, state.range(0) / 100.0);
  state.SetLabel("zeros=" + std::to_string(state.range(0)) + "%");
}
BENCHMARK(BM_GemmNNDense)->Arg(0)->Arg(50);

// One Algorithm-1 optimizer step at paper scale (kdim 29, rank 24, px 64,
// batch 4) on synthetic spectra/targets: legacy per-mask chain vs the
// tensor-batched trainer.  Items processed counts optimizer steps, so the
// two rates are directly comparable (and to bench_train's steps/s).
TrainingSet synthetic_training_set(int samples, int kdim, int px) {
  Rng rng(12);
  TrainingSet set;
  set.kernel_dim = kdim;
  set.train_px = px;
  for (int i = 0; i < samples; ++i) {
    nn::Tensor spec({kdim, kdim, 2});
    spec.randn(rng, 0.05f);
    nn::Tensor tgt({px, px});
    for (std::int64_t p = 0; p < tgt.numel(); ++p) {
      tgt[p] = static_cast<float>(rng.uniform());
    }
    set.spectra.push_back(std::move(spec));
    set.targets.push_back(std::move(tgt));
  }
  return set;
}

NithoConfig train_step_model_config() {
  NithoConfig mc;
  mc.kernel_dim = 29;
  mc.rank = 24;
  mc.encoding.features = 96;
  mc.hidden = 48;
  mc.blocks = 2;
  return mc;
}

void BM_TrainStepLegacy(benchmark::State& state) {
  const TrainingSet set = synthetic_training_set(4, 29, 64);
  NithoModel model(train_step_model_config(), 1000, 193.0, 1.35);
  NithoTrainConfig cfg;
  cfg.epochs = 5;  // 5 one-batch steps per call
  cfg.batch = 4;
  cfg.train_px = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::legacy_train_nitho(model, set, cfg));
  }
  state.SetItemsProcessed(state.iterations() * cfg.epochs);
  state.SetLabel("kdim=29 rank=24 px=64 batch=4");
}
BENCHMARK(BM_TrainStepLegacy)->Unit(benchmark::kMillisecond);

void BM_TrainStepBatched(benchmark::State& state) {
  const TrainingSet set = synthetic_training_set(4, 29, 64);
  NithoModel model(train_step_model_config(), 1000, 193.0, 1.35);
  NithoTrainConfig cfg;
  cfg.epochs = 5;  // 5 steps: the graph arena warms up after the first
  cfg.batch = 4;
  cfg.train_px = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(train_nitho(model, set, cfg));
  }
  state.SetItemsProcessed(state.iterations() * cfg.epochs);
  state.SetLabel("kdim=29 rank=24 px=64 batch=4");
}
BENCHMARK(BM_TrainStepBatched)->Unit(benchmark::kMillisecond);

void BM_Conv2d(benchmark::State& state) {
  Rng rng(7);
  nn::Tensor x({16, 64, 64});
  x.randn(rng, 1.0f);
  nn::Tensor w({16, 16, 3, 3});
  w.randn(rng, 0.1f);
  nn::Var vw = nn::make_leaf(w, false);
  nn::Var vb = nn::make_leaf(nn::Tensor({16}), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::conv2d(nn::make_leaf(x, false), vw, vb));
  }
}
BENCHMARK(BM_Conv2d)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nitho

BENCHMARK_MAIN();
