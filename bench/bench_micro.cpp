// Microbenchmarks (google-benchmark): the computational primitives behind
// every experiment — FFTs, eigensolver, TCC build, SOCS imaging, CMLP
// forward/backward, convolution.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/spectral.hpp"
#include "math/hermitian_eig.hpp"
#include "nitho/cmlp.hpp"
#include "nitho/encoding.hpp"
#include "nn/ops.hpp"
#include "nn/ops_conv.hpp"
#include "nn/optimizer.hpp"
#include "litho/engine.hpp"
#include "litho/simulator.hpp"
#include "optics/resolution.hpp"
#include "optics/socs.hpp"
#include "optics/tcc.hpp"

namespace nitho {
namespace {

void BM_Fft1d(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<cd> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = cd(rng.normal(), rng.normal());
  const FftPlan<double>& plan = fft_plan_d(n);
  for (auto _ : state) {
    plan.forward(x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Fft1d)->Arg(64)->Arg(243)->Arg(256)->Arg(1024);

void BM_Fft2d(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Grid<cd> g(n, n);
  for (auto& v : g) v = cd(rng.normal(), rng.normal());
  for (auto _ : state) {
    fft2_inplace(g);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_Fft2d)->Arg(64)->Arg(128)->Arg(256);

void BM_FftCropCentered(benchmark::State& state) {
  Rng rng(3);
  Grid<double> img(1024, 1024);
  for (auto& v : img) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft2_crop_centered(img, 63));
  }
}
BENCHMARK(BM_FftCropCentered);

void BM_HermitianEigh(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  Grid<cd> a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = cd(rng.normal(), 0.0);
    for (int j = i + 1; j < n; ++j) {
      const cd v(rng.normal(), rng.normal());
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eigh(a));
  }
}
BENCHMARK(BM_HermitianEigh)->Arg(64)->Arg(225)->Unit(benchmark::kMillisecond);

void BM_TccBuild(benchmark::State& state) {
  OpticalSystem sys;
  const int kdim = kernel_dim(512, sys.wavelength_nm, sys.na);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_tcc(sys, 512, kdim));
  }
}
BENCHMARK(BM_TccBuild)->Unit(benchmark::kMillisecond);

void BM_SocsAerial(benchmark::State& state) {
  const int rank = static_cast<int>(state.range(0));
  OpticalSystem sys;
  const int kdim = kernel_dim(512, sys.wavelength_nm, sys.na);
  const Grid<cd> tcc = build_tcc(sys, 512, kdim);
  const SocsKernels socs = socs_decompose(tcc, kdim, 0.0, rank);
  Rng rng(5);
  Grid<cd> spec(kdim, kdim);
  for (auto& v : spec) v = cd(rng.normal() * 0.05, rng.normal() * 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(socs_aerial(socs.kernels, spec, 64));
  }
  state.SetLabel("rank=" + std::to_string(socs.rank()));
}
BENCHMARK(BM_SocsAerial)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_Fft2dWorkspace(benchmark::State& state) {
  // fft2_inplace with a reused workspace: the per-call column buffer and
  // Bluestein scratch disappear (compare against BM_Fft2d).
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Grid<cd> g(n, n);
  for (auto& v : g) v = cd(rng.normal(), rng.normal());
  Fft2Workspace ws;
  for (auto _ : state) {
    fft2_inplace(g, ws);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_Fft2dWorkspace)->Arg(64)->Arg(128)->Arg(256);

void BM_AerialEngineSingle(benchmark::State& state) {
  // Persistent engine, one spectrum per call (compare against
  // BM_SocsAerial, which pays transient-engine setup per call).
  const int rank = static_cast<int>(state.range(0));
  OpticalSystem sys;
  const int kdim = kernel_dim(512, sys.wavelength_nm, sys.na);
  const Grid<cd> tcc = build_tcc(sys, 512, kdim);
  const SocsKernels socs = socs_decompose(tcc, kdim, 0.0, rank);
  const AerialEngine engine(socs.kernels, 64);
  Rng rng(5);
  Grid<cd> spec(kdim, kdim);
  for (auto& v : spec) v = cd(rng.normal() * 0.05, rng.normal() * 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.aerial(spec));
  }
  state.SetLabel("rank=" + std::to_string(socs.rank()));
}
BENCHMARK(BM_AerialEngineSingle)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_AerialEngineBatch(benchmark::State& state) {
  // Eight spectra per engine sweep; items processed counts spectra so the
  // per-mask rate is directly comparable to BM_AerialEngineSingle.
  const int rank = static_cast<int>(state.range(0));
  OpticalSystem sys;
  const int kdim = kernel_dim(512, sys.wavelength_nm, sys.na);
  const Grid<cd> tcc = build_tcc(sys, 512, kdim);
  const SocsKernels socs = socs_decompose(tcc, kdim, 0.0, rank);
  const AerialEngine engine(socs.kernels, 64);
  Rng rng(5);
  std::vector<Grid<cd>> spectra(8, Grid<cd>(kdim, kdim));
  for (auto& spec : spectra) {
    for (auto& v : spec) v = cd(rng.normal() * 0.05, rng.normal() * 0.05);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.aerial_batch(spectra));
  }
  state.SetItemsProcessed(state.iterations() * 8);
  state.SetLabel("rank=" + std::to_string(socs.rank()) + " batch=8");
}
BENCHMARK(BM_AerialEngineBatch)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_CmlpForward(benchmark::State& state) {
  CmlpConfig cfg;
  cfg.in_features = 96;
  cfg.hidden = 48;
  cfg.blocks = 2;
  cfg.out = 24;
  Cmlp mlp(cfg);
  EncodingConfig ec;
  ec.features = 96;
  const nn::Tensor coords = encode_coordinates(29, 29, ec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.forward(nn::make_leaf(coords, false)));
  }
  state.SetLabel("29x29 coords");
}
BENCHMARK(BM_CmlpForward)->Unit(benchmark::kMillisecond);

void BM_CmlpTrainStep(benchmark::State& state) {
  CmlpConfig cfg;
  cfg.in_features = 96;
  cfg.hidden = 48;
  cfg.blocks = 2;
  cfg.out = 24;
  Cmlp mlp(cfg);
  EncodingConfig ec;
  ec.features = 96;
  const nn::Tensor coords = encode_coordinates(29, 29, ec);
  nn::Tensor target({29 * 29, 24, 2});
  Rng rng(6);
  target.randn(rng, 0.1f);
  nn::Adam opt(mlp.parameters(), 1e-3f);
  for (auto _ : state) {
    opt.zero_grad();
    nn::Var loss = nn::mse_loss(mlp.forward(nn::make_leaf(coords, false)), target);
    nn::backward(loss);
    opt.step();
    benchmark::DoNotOptimize(loss->value[0]);
  }
}
BENCHMARK(BM_CmlpTrainStep)->Unit(benchmark::kMillisecond);

void BM_Conv2d(benchmark::State& state) {
  Rng rng(7);
  nn::Tensor x({16, 64, 64});
  x.randn(rng, 1.0f);
  nn::Tensor w({16, 16, 3, 3});
  w.randn(rng, 0.1f);
  nn::Var vw = nn::make_leaf(w, false);
  nn::Var vb = nn::make_leaf(nn::Tensor({16}), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::conv2d(nn::make_leaf(x, false), vw, vb));
  }
}
BENCHMARK(BM_Conv2d)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nitho

BENCHMARK_MAIN();
