// Fig. 2(b): visual comparison of generalization on OOD data.
// Models trained on B1 and B2v (cached from Table III when available) are
// applied to B1opc and B2m tiles; per-tile montages of
// [mask | resist GT | TEMPO | DOINN | Nitho] are written as PGM.

#include <cstdio>

#include "baselines/image_trainer.hpp"
#include "common.hpp"
#include "io/pgm.hpp"
#include "nitho/fast_litho.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchEnv env(BenchConfig::from_flags(flags));
  std::printf("== Fig. 2(b): OOD generalization visualization ==\n\n");

  const DatasetKind train_kinds[2] = {DatasetKind::B1, DatasetKind::B2v};
  const DatasetKind test_kinds[2] = {DatasetKind::B1opc, DatasetKind::B2m};
  const double thr = env.resist_threshold();
  const int px = env.litho().analysis_px;

  for (int p = 0; p < 2; ++p) {
    const std::string tag = dataset_name(train_kinds[p]);
    const auto train = sample_ptrs(env.train_set(train_kinds[p]));
    auto tempo = env.trained_tempo(tag, train);
    auto doinn = env.trained_doinn(tag, train);
    auto nitho = env.trained_nitho(tag, train);

    const Dataset& test = env.test_set(test_kinds[p]);
    for (int i = 0; i < std::min<int>(2, static_cast<int>(test.samples.size()));
         ++i) {
      const Sample& s = test.samples[static_cast<std::size_t>(i)];
      const Grid<double> zt = binarize(
          predict_aerial(*tempo, s, env.cfg().baseline_px, px), thr);
      const Grid<double> zd = binarize(
          predict_aerial(*doinn, s, env.cfg().baseline_px, px), thr);
      const Grid<double> zn = binarize(predict_aerial(*nitho, s, px), thr);
      const std::string path = out_dir() + "/fig2b_" + tag + "_to_" +
                               dataset_name(test_kinds[p]) + "_" +
                               std::to_string(i) + ".pgm";
      write_pgm_montage(path, {s.mask_coarse, s.resist, zt, zd, zn});
      const double miou_t = miou(s.resist, zt);
      const double miou_d = miou(s.resist, zd);
      const double miou_n = miou(s.resist, zn);
      std::printf("%s -> %s tile %d: mIOU  TEMPO %.3f  DOINN %.3f  Nitho %.3f"
                  "  (%s)\n",
                  tag.c_str(), dataset_name(test_kinds[p]).c_str(), i, miou_t,
                  miou_d, miou_n, path.c_str());
    }
  }
  std::printf("\nMontage panels: mask | resist GT | TEMPO | DOINN | Nitho.\n"
              "Paper shape: baselines hallucinate/miss shapes on OOD tiles,\n"
              "Nitho stays faithful to the ground truth.\n");
  return 0;
}
