// Table I: model comparison — training pair, network modeling target,
// architecture and size, for TEMPO-like / DOINN-like / Nitho.

#include <cstdio>

#include "baselines/doinn.hpp"
#include "baselines/tempo.hpp"
#include "common.hpp"
#include "io/csv.hpp"
#include "nitho/model.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  (void)flags;
  std::printf("== Table I: comparisons between Nitho and SOTA ==\n\n");

  TempoModel tempo;
  DoinnModel doinn;
  NithoConfig mc;
  mc.rank = 24;
  mc.encoding.features = 96;
  mc.hidden = 48;
  mc.blocks = 2;
  NithoModel nitho(mc, 1024, 193.0, 1.35);

  const double t_mb = tempo.parameter_bytes() / 1048576.0;
  const double d_mb = doinn.parameter_bytes() / 1048576.0;
  const double n_mb = nitho.parameter_bytes() / 1048576.0;

  TablePrinter tp({"", "TEMPO", "DOINN", "Nitho"}, 22);
  tp.row({"Training pair", "Mask-Aerial", "Mask-Resist", "Mask-Aerial"});
  tp.row({"Network modeling", "S(T*G(.))", "H(S(T*G(.)))", "F(T)"});
  tp.row({"Network arch.", "cGAN (enc-dec)", "FNO+CNN", "CMLP"});
  tp.row({"Params (this repo)", std::to_string(tempo.parameter_count()),
          std::to_string(doinn.parameter_count()),
          std::to_string(nitho.parameter_count())});
  tp.row({"Size (this repo, MB)", fmt(t_mb, 3), fmt(d_mb, 3), fmt(n_mb, 3)});
  tp.row({"Size (paper, MB)", "~31", "~1.3", "0.41"});
  tp.rule();
  std::printf(
      "\nShape check: Nitho uses %.0f%% of DOINN's parameters "
      "(paper: 31%%) and %.1f%% of TEMPO's (paper: ~1%%).\n",
      100.0 * nitho.parameter_count() / doinn.parameter_count(),
      100.0 * nitho.parameter_count() / tempo.parameter_count());
  std::printf(
      "Note: all models are scaled down jointly for 2-core CPU training; "
      "the ordering TEMPO >> DOINN >> Nitho is preserved (DESIGN.md §3).\n");

  CsvWriter csv(out_dir() + "/table1_model_size.csv",
                {"model", "params", "bytes", "paper_mb"});
  csv.row({"TEMPO-like", std::to_string(tempo.parameter_count()),
           std::to_string(tempo.parameter_bytes()), "31"});
  csv.row({"DOINN-like", std::to_string(doinn.parameter_count()),
           std::to_string(doinn.parameter_bytes()), "1.3"});
  csv.row({"Nitho", std::to_string(nitho.parameter_count()),
           std::to_string(nitho.parameter_bytes()), "0.41"});
  return 0;
}
