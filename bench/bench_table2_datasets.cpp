// Table II: dataset details.  Regenerates each family with the layout
// generators and reports counts, tile size and litho engine, with measured
// pattern statistics demonstrating the family-level differences.

#include <cstdio>

#include "common.hpp"
#include "common/rng.hpp"
#include "io/csv.hpp"
#include "layout/raster.hpp"
#include "math/stats.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int probe = flags.get_int("probe", 16);
  std::printf("== Table II: details of the dataset ==\n\n");

  const BenchConfig cfg = BenchConfig::from_flags(flags);
  struct Row {
    DatasetKind kind;
    const char* paper_train;
    const char* paper_test;
  };
  const Row rows[] = {
      {DatasetKind::B1, "4875", "10"},
      {DatasetKind::B1opc, "-", "10"},
      {DatasetKind::B2m, "1000", "300"},
      {DatasetKind::B2v, "10000", "10000"},
  };

  TablePrinter tp({"Dataset", "Train", "Test", "Tile", "Engine", "Density",
                   "Feats/tile"},
                  12);
  CsvWriter csv(out_dir() + "/table2_datasets.csv",
                {"dataset", "train", "test", "tile_um2", "density_mean",
                 "features_mean"});
  for (const Row& r : rows) {
    Rng rng(7);
    std::vector<double> density, feats;
    for (int i = 0; i < probe; ++i) {
      const Layout l = make_layout(r.kind, 1024, rng);
      density.push_back(pattern_density(rasterize(l, 4)));
      feats.push_back(static_cast<double>(l.main.size() + l.sraf.size()));
    }
    const Summary d = summarize(density), f = summarize(feats);
    const std::string train =
        r.kind == DatasetKind::B1opc ? "-" : std::to_string(cfg.train_count);
    tp.row({dataset_name(r.kind), train + "/" + r.paper_train,
            std::to_string(cfg.test_count) + "/" + r.paper_test, "1um2/4um2",
            "GoldenEng", fmt(d.mean, 3), fmt(f.mean, 1)});
    csv.row({dataset_name(r.kind), train, std::to_string(cfg.test_count),
             "1.05", fmt(d.mean, 4), fmt(f.mean, 2)});
  }
  tp.rule();
  std::printf(
      "\nColumns show ours/paper.  Paper golden engines: Lithosim (B1) and\n"
      "Mentor Calibre (B2m/B2v); here all golden images come from the\n"
      "full-rank Hopkins/SOCS GoldenEngine (lambda=193nm, NA=1.35, annular).\n"
      "Density / feature statistics confirm the four families are distinct\n"
      "distributions (B1opc adds serifs+SRAFs, B2v is sparse small squares).\n");
  return 0;
}
