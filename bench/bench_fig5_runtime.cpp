// Fig. 5: runtime comparison in throughput (um^2/s).
//
// Times the complete mask-to-aerial pipeline for each model on freshly
// rasterized tiles: baselines run mask downsampling + network forward;
// Nitho runs the cropped-spectrum FFT + SOCS with its learned kernels (no
// network at inference, paper §III-C1); the reference simulator runs
// full Abbe source-point summation.
//
// The Nitho row is measured three ways: the pre-AerialEngine single-mask
// loop (reimplemented below, with its per-kernel allocations and plain
// complex mask FFT), the current single-mask API, and the batched
// AerialEngine sweep.  The batch/pre-refactor ratio is the engine
// acceptance number tracked in bench/baselines/fig5_runtime.csv.

#include <cstdio>
#include <vector>

#include "baselines/image_trainer.hpp"
#include "common.hpp"
#include "common/timer.hpp"
#include "fft/fft.hpp"
#include "fft/spectral.hpp"
#include "io/csv.hpp"
#include "layout/raster.hpp"
#include "nitho/fast_litho.hpp"

using namespace nitho;
using namespace nitho::bench;

namespace {

// Pre-refactor mask->aerial pipeline, kept verbatim for the before/after
// comparison: full complex row FFTs (no real-row pairing), then per kernel
// a fresh product grid, a centered embed, an ifftshift copy and a
// full-grid inverse transform.
Grid<cd> legacy_fft2_crop_centered(const Grid<double>& img, int crop) {
  const int rows = img.rows(), cols = img.cols();
  const int half = crop / 2;
  const FftPlan<double>& row_plan = fft_plan_d(cols);
  Grid<cd> partial(rows, crop);
  std::vector<cd> buf(cols);
  for (int r = 0; r < rows; ++r) {
    const double* src = img.row(r);
    for (int c = 0; c < cols; ++c) buf[c] = cd(src[c], 0.0);
    row_plan.forward(buf.data());
    for (int k = -half; k <= half; ++k)
      partial(r, k + half) = buf[(k + cols) % cols];
  }
  const FftPlan<double>& col_plan = fft_plan_d(rows);
  Grid<cd> out(crop, crop);
  std::vector<cd> col(rows);
  for (int j = 0; j < crop; ++j) {
    for (int r = 0; r < rows; ++r) col[r] = partial(r, j);
    col_plan.forward(col.data());
    for (int k = -half; k <= half; ++k)
      out(k + half, j) = col[(k + rows) % rows];
  }
  return out;
}

Grid<double> legacy_aerial_from_mask(const std::vector<Grid<cd>>& kernels,
                                     const Grid<double>& mask, int out_px) {
  const int kdim = kernels[0].rows();
  Grid<cd> c = legacy_fft2_crop_centered(mask, kdim);
  const double inv_n2 =
      1.0 / (static_cast<double>(mask.rows()) * mask.cols());
  for (auto& z : c) z *= inv_n2;
  Grid<double> intensity(out_px, out_px, 0.0);
  const double scale = static_cast<double>(out_px) * out_px;
  for (const Grid<cd>& k : kernels) {
    Grid<cd> prod(kdim, kdim);
    for (std::size_t a = 0; a < prod.size(); ++a) prod[a] = k[a] * c[a];
    Grid<cd> e = ifftshift(center_embed(prod, out_px, out_px));
    ifft2_inplace(e);
    for (std::size_t a = 0; a < intensity.size(); ++a)
      intensity[a] += norm2(e[a] * scale);
  }
  return intensity;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  log_simd_arm();
  BenchEnv env(BenchConfig::from_flags(flags));
  const int tiles = flags.get_int("tiles", 6);
  const int ref_tiles = flags.get_int("ref-tiles", 2);
  std::printf("== Fig. 5: runtime comparison (throughput, um^2/s) ==\n\n");

  // Models: reuse the B2v-trained checkpoints when cached; weights do not
  // affect runtime.
  const auto train = sample_ptrs(env.train_set(DatasetKind::B2v));
  auto tempo = env.trained_tempo("B2v", train);
  auto doinn = env.trained_doinn("B2v", train);
  auto nitho = env.trained_nitho("B2v", train);
  const FastLitho fast = FastLitho::from_model(*nitho);

  // Fresh masks (rasterization itself is not timed: all models share it).
  Rng rng(31337);
  std::vector<Grid<double>> masks;
  for (int i = 0; i < tiles; ++i) {
    masks.push_back(rasterize(make_layout(DatasetKind::B2m, 1024, rng), 1));
  }
  const double tile_um2 = 1.024 * 1.024;
  const int px = env.litho().analysis_px;
  const int bpx = env.cfg().baseline_px;

  auto time_model = [&](auto&& fn, int count) {
    WallTimer t;
    for (int i = 0; i < count; ++i) fn(masks[static_cast<std::size_t>(i)]);
    return count * tile_um2 / t.seconds();
  };

  // Protocol: every model must deliver the aerial image on the analysis
  // grid (px^2).  The CNNs run their forward pass at that resolution (their
  // outputs are not band-limited, so they cannot be computed small and
  // upsampled exactly); Nitho computes SOCS on the smallest alias-free grid
  // and upsamples spectrally, which is exact for band-limited intensities.
  (void)bpx;
  const double tempo_tp = time_model(
      [&](const Grid<double>& m) {
        Sample s;
        s.mask_coarse = downsample_area(m, m.rows() / px);
        (void)predict_aerial(*tempo, s, px, px);
      },
      tiles);
  const double doinn_tp = time_model(
      [&](const Grid<double>& m) {
        Sample s;
        s.mask_coarse = downsample_area(m, m.rows() / px);
        (void)predict_aerial(*doinn, s, px, px);
      },
      tiles);
  const int socs_px = 2 * fast.kernel_dim() <= 64 ? 64 : px;
  // Before/after for the engine refactor: the pre-refactor loop, the
  // current single-mask API, and the batched sweep, all on the same
  // kernel set and masks.
  const double nitho_pre_tp = time_model(
      [&](const Grid<double>& m) {
        (void)spectral_resample(
            legacy_aerial_from_mask(fast.kernels(), m, socs_px), px, px);
      },
      tiles);
  const double nitho_tp = time_model(
      [&](const Grid<double>& m) {
        (void)spectral_resample(fast.aerial_from_mask(m, socs_px), px, px);
      },
      tiles);
  const double nitho_batch_tp = [&] {
    WallTimer t;
    const std::vector<Grid<double>> aerials =
        fast.aerial_batch(masks, socs_px);
    for (const Grid<double>& a : aerials) {
      (void)spectral_resample(a, px, px);
    }
    return tiles * tile_um2 / t.seconds();
  }();
  // Rigorous work profile: a 255-order spectrum window imaged at 256^2 per
  // source point — no band-limit shortcut, as in production rigorous codes.
  const double ref_tp = time_model(
      [&](const Grid<double>& m) {
        (void)env.engine().reference_aerial(m, 256, 255);
      },
      ref_tiles);

  TablePrinter tp({"Model", "um2/s", "paper um2/s", "speed vs ref"}, 14);
  tp.row({"TEMPO", fmt(tempo_tp, 2), "28", fmt(tempo_tp / ref_tp, 1) + "x"});
  tp.row({"DOINN", fmt(doinn_tp, 2), "34", fmt(doinn_tp / ref_tp, 1) + "x"});
  tp.row({"Nitho (pre-refactor)", fmt(nitho_pre_tp, 2), "-",
          fmt(nitho_pre_tp / ref_tp, 1) + "x"});
  tp.row({"Nitho (single)", fmt(nitho_tp, 2), "45",
          fmt(nitho_tp / ref_tp, 1) + "x"});
  tp.row({"Nitho (batch)", fmt(nitho_batch_tp, 2), "45",
          fmt(nitho_batch_tp / ref_tp, 1) + "x"});
  tp.row({"Ref (Abbe)", fmt(ref_tp, 2), "0.4-0.5", "1x"});
  tp.rule();

  CsvWriter csv(out_dir() + "/fig5_runtime.csv",
                {"model", "um2_per_s", "vs_prerefactor"});
  csv.row({"TEMPO", fmt(tempo_tp, 4), "-"});
  csv.row({"DOINN", fmt(doinn_tp, 4), "-"});
  csv.row({"Nitho_prerefactor", fmt(nitho_pre_tp, 4), "1.00"});
  csv.row({"Nitho_single", fmt(nitho_tp, 4),
           fmt(nitho_tp / nitho_pre_tp, 2)});
  csv.row({"Nitho_batch", fmt(nitho_batch_tp, 4),
           fmt(nitho_batch_tp / nitho_pre_tp, 2)});
  csv.row({"Reference", fmt(ref_tp, 4), "-"});

  std::printf(
      "\nEngine acceptance: batched path is %.2fx the pre-refactor "
      "single-mask loop (target >= 1.5x).\n",
      nitho_batch_tp / nitho_pre_tp);
  std::printf(
      "\nPaper shape: Nitho > DOINN > TEMPO >> rigorous simulator (~90x).\n"
      "All numbers above are measured on this machine's CPU (the paper\n"
      "used a GPU; ratios, not absolutes, are the comparison target).\n");
  return 0;
}
