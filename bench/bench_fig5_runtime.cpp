// Fig. 5: runtime comparison in throughput (um^2/s).
//
// Times the complete mask-to-aerial pipeline for each model on freshly
// rasterized tiles: baselines run mask downsampling + network forward;
// Nitho runs the cropped-spectrum FFT + SOCS with its learned kernels (no
// network at inference, paper §III-C1); the reference simulator runs
// full Abbe source-point summation.

#include <cstdio>

#include "baselines/image_trainer.hpp"
#include "common.hpp"
#include "common/timer.hpp"
#include "fft/spectral.hpp"
#include "io/csv.hpp"
#include "layout/raster.hpp"
#include "nitho/fast_litho.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchEnv env(BenchConfig::from_flags(flags));
  const int tiles = flags.get_int("tiles", 6);
  const int ref_tiles = flags.get_int("ref-tiles", 2);
  std::printf("== Fig. 5: runtime comparison (throughput, um^2/s) ==\n\n");

  // Models: reuse the B2v-trained checkpoints when cached; weights do not
  // affect runtime.
  const auto train = sample_ptrs(env.train_set(DatasetKind::B2v));
  auto tempo = env.trained_tempo("B2v", train);
  auto doinn = env.trained_doinn("B2v", train);
  auto nitho = env.trained_nitho("B2v", train);
  const FastLitho fast = FastLitho::from_model(*nitho);

  // Fresh masks (rasterization itself is not timed: all models share it).
  Rng rng(31337);
  std::vector<Grid<double>> masks;
  for (int i = 0; i < tiles; ++i) {
    masks.push_back(rasterize(make_layout(DatasetKind::B2m, 1024, rng), 1));
  }
  const double tile_um2 = 1.024 * 1.024;
  const int px = env.litho().analysis_px;
  const int bpx = env.cfg().baseline_px;

  auto time_model = [&](auto&& fn, int count) {
    WallTimer t;
    for (int i = 0; i < count; ++i) fn(masks[static_cast<std::size_t>(i)]);
    return count * tile_um2 / t.seconds();
  };

  // Protocol: every model must deliver the aerial image on the analysis
  // grid (px^2).  The CNNs run their forward pass at that resolution (their
  // outputs are not band-limited, so they cannot be computed small and
  // upsampled exactly); Nitho computes SOCS on the smallest alias-free grid
  // and upsamples spectrally, which is exact for band-limited intensities.
  (void)bpx;
  const double tempo_tp = time_model(
      [&](const Grid<double>& m) {
        Sample s;
        s.mask_coarse = downsample_area(m, m.rows() / px);
        (void)predict_aerial(*tempo, s, px, px);
      },
      tiles);
  const double doinn_tp = time_model(
      [&](const Grid<double>& m) {
        Sample s;
        s.mask_coarse = downsample_area(m, m.rows() / px);
        (void)predict_aerial(*doinn, s, px, px);
      },
      tiles);
  const int socs_px = 2 * fast.kernel_dim() <= 64 ? 64 : px;
  const double nitho_tp = time_model(
      [&](const Grid<double>& m) {
        (void)spectral_resample(fast.aerial_from_mask(m, socs_px), px, px);
      },
      tiles);
  // Rigorous work profile: a 255-order spectrum window imaged at 256^2 per
  // source point — no band-limit shortcut, as in production rigorous codes.
  const double ref_tp = time_model(
      [&](const Grid<double>& m) {
        (void)env.engine().reference_aerial(m, 256, 255);
      },
      ref_tiles);

  TablePrinter tp({"Model", "um2/s", "paper um2/s", "speed vs ref"}, 14);
  tp.row({"TEMPO", fmt(tempo_tp, 2), "28", fmt(tempo_tp / ref_tp, 1) + "x"});
  tp.row({"DOINN", fmt(doinn_tp, 2), "34", fmt(doinn_tp / ref_tp, 1) + "x"});
  tp.row({"Nitho", fmt(nitho_tp, 2), "45", fmt(nitho_tp / ref_tp, 1) + "x"});
  tp.row({"Ref (Abbe)", fmt(ref_tp, 2), "0.4-0.5", "1x"});
  tp.rule();

  CsvWriter csv(out_dir() + "/fig5_runtime.csv", {"model", "um2_per_s"});
  csv.row({"TEMPO", fmt(tempo_tp, 4)});
  csv.row({"DOINN", fmt(doinn_tp, 4)});
  csv.row({"Nitho", fmt(nitho_tp, 4)});
  csv.row({"Reference", fmt(ref_tp, 4)});

  std::printf(
      "\nPaper shape: Nitho > DOINN > TEMPO >> rigorous simulator (~90x).\n"
      "All numbers above are measured on this machine's CPU (the paper\n"
      "used a GPU; ratios, not absolutes, are the comparison target).\n");
  return 0;
}
