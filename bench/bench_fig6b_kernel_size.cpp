// Fig. 6(b): ablation on the optical-kernel dimension.
// Sweeps the kernel width m = n below and above the Eq.-10 optimum (29 for
// 1 um tiles at lambda=193 nm, NA=1.35) and reports test PSNR per dataset.
// The curve should rise and then flatten at the physics-derived optimum.

#include <cstdio>

#include "common.hpp"
#include "io/csv.hpp"
#include "optics/resolution.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchConfig bc = BenchConfig::from_flags(flags);
  bc.nitho_epochs = flags.get_int("nitho-epochs", 30);
  if (!flags.has("train")) bc.train_count = 16;
  BenchEnv env(bc);

  const int optimum = kernel_dim(env.litho().tile_nm,
                                 env.litho().optics.wavelength_nm,
                                 env.litho().optics.na);
  std::printf("== Fig. 6(b): PSNR vs kernel width/height (Eq.-10 optimum: %d) ==\n\n",
              optimum);

  const std::vector<int> dims = flags.get_bool("full")
                                    ? std::vector<int>{9, 15, 21, 29, 37, 45}
                                    : std::vector<int>{9, 15, 21, 29, 37};
  const DatasetKind kinds[] = {DatasetKind::B1, DatasetKind::B2m,
                               DatasetKind::B2v};

  CsvWriter csv(out_dir() + "/fig6b_kernel_size.csv",
                {"kernel_dim", "dataset", "psnr_db"});
  TablePrinter tp({"KernelDim", "B1", "B2m", "B2v"}, 11);

  for (int dim : dims) {
    std::vector<std::string> row = {std::to_string(dim)};
    for (const DatasetKind kind : kinds) {
      const std::string tag =
          dataset_name(kind) + "-kdim" + std::to_string(dim);
      auto model = env.trained_nitho(tag, sample_ptrs(env.train_set(kind)),
                                     -1, -1, dim);
      const double p = env.eval_nitho(*model, env.test_set(kind)).psnr;
      row.push_back(fmt(p, 2));
      csv.row({std::to_string(dim), dataset_name(kind), fmt(p, 3)});
    }
    tp.row(row);
  }
  tp.rule();
  std::printf(
      "\nPaper shape: PSNR climbs with kernel size and flattens at the\n"
      "resolution-limit optimum (%d here, 57 at the paper's 2 um tiles) —\n"
      "beyond it the pupil passes no additional information.\n",
      optimum);
  return 0;
}
