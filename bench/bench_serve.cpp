// Serving-layer throughput: LithoServer micro-batching vs naive
// concurrency (DESIGN.md §7.6).
//
// Kernel values do not affect runtime, so the kernel set is synthesized
// directly (no training) at the golden engine's shape class.  Four
// strategies answer the same stream of mask->aerial requests:
//
//   direct_serial            one thread, one aerial_from_mask per request —
//                            the raw compute floor, no serving overhead.
//   naive_thread_per_request the obvious "server": spawn a thread per
//                            request, every request computes independently.
//                            This is the baseline the serving layer must
//                            beat (vs_naive column, acceptance >= 1.3x for
//                            served_open_loop).
//   served_open_loop         LithoServer, one submitter streaming every
//                            request through the bounded queue (backpressure
//                            paces it), then collecting futures — the
//                            batch-friendliest load.
//   served_closed_loop       LithoServer, N clients each keeping a small
//                            pipeline of outstanding requests (closed loop,
//                            like examples/serve_demo.cpp).
//
// The acceptance number is recorded in bench/baselines/serve_throughput.csv
// and gated by bench/check_baselines.py.
//
// A second scenario (DESIGN.md §9.5) measures *overload*: an open-loop
// arrival schedule at ~2x the measured open-loop capacity, where requests
// arrive on a fixed clock whether or not the server keeps up — the regime
// the DOINN/TEMPO-style throughput tables never report.  Without admission
// control the queue fills and every request pays the full queueing delay;
// with a SloPolicy (+ autotune) the server sheds doomed requests at submit
// or on dequeue, and the accepted requests' p99 stays under the SLO target
// while goodput holds near capacity.  Recorded in
// bench/baselines/serve_slo.csv (slo_headroom = target_p99 / measured p99
// >= 1 and goodput_vs_capacity >= 0.9 are the gated acceptance numbers).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "common.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "io/csv.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "nitho/fast_litho.hpp"
#include "serve/server.hpp"

using namespace nitho;
using namespace nitho::bench;

namespace {

std::vector<Grid<cd>> synth_kernels(int rank, int kdim, Rng& rng) {
  std::vector<Grid<cd>> kernels;
  kernels.reserve(static_cast<std::size_t>(rank));
  for (int k = 0; k < rank; ++k) {
    Grid<cd> g(kdim, kdim);
    for (auto& z : g) z = cd(rng.normal(), rng.normal());
    kernels.push_back(std::move(g));
  }
  return kernels;
}

std::vector<Grid<double>> synth_masks(int count, int px, Rng& rng) {
  std::vector<Grid<double>> masks;
  masks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Grid<double> m(px, px, 0.0);
    // A few random rectangles, like a contact/metal tile.
    for (int r = 0; r < 6; ++r) {
      const int h = rng.randint(2, px / 4), w = rng.randint(2, px / 4);
      const int r0 = rng.randint(0, px - h), c0 = rng.randint(0, px - w);
      for (int y = r0; y < r0 + h; ++y)
        for (int x = c0; x < c0 + w; ++x) m(y, x) = 1.0;
    }
    masks.push_back(std::move(m));
  }
  return masks;
}

using serve::latency_str;

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  log_simd_arm();
  // Default workload: batch-friendly load — many small tiles (an OPC-style
  // tile sweep), where per-request overhead rivals compute and coalescing
  // pays.  At heavier per-request compute (e.g. --mask-px 64 --rank 16)
  // every strategy converges on the compute floor and the ratio tends to 1.
  const int reqs = flags.get_int("reqs", 512);
  const int mask_px = flags.get_int("mask-px", 32);
  const int out_px = flags.get_int("out-px", 16);
  const int rank = flags.get_int("rank", 8);
  const int kdim = flags.get_int("kdim", 9);
  const int shards = flags.get_int("shards", 1);
  const int max_batch = flags.get_int("max-batch", 16);
  const int max_delay_us = flags.get_int("max-delay-us", 300);
  const int clients = flags.get_int("clients", 4);
  const int depth = flags.get_int("depth", 16);

  std::printf("== Serving throughput: micro-batched LithoServer vs naive ==\n");
  std::printf("reqs=%d mask=%dpx out=%dpx rank=%d kdim=%d shards=%d "
              "max_batch=%d max_delay=%dus\n\n",
              reqs, mask_px, out_px, rank, kdim, shards, max_batch,
              max_delay_us);

  Rng rng(20260730);
  const std::vector<Grid<cd>> kernels = synth_kernels(rank, kdim, rng);
  const std::vector<Grid<double>> masks = synth_masks(reqs, mask_px, rng);

  const auto serve_options = [&] {
    serve::ServeOptions opts;
    opts.shards = shards;
    opts.queue_capacity = 64;
    opts.batch.max_batch = max_batch;
    opts.batch.max_delay = std::chrono::microseconds(max_delay_us);
    return opts;
  }();

  // --- direct serial loop (compute floor) --------------------------------
  const double direct_tp = [&] {
    const FastLitho fast{std::vector<Grid<cd>>(kernels)};
    (void)fast.aerial_from_mask(masks[0], out_px);  // warm plans + cache
    WallTimer t;
    for (const Grid<double>& m : masks) (void)fast.aerial_from_mask(m, out_px);
    return reqs / t.seconds();
  }();

  // --- naive one-thread-per-request loop ---------------------------------
  const double naive_tp = [&] {
    const FastLitho fast{std::vector<Grid<cd>>(kernels)};
    (void)fast.aerial_from_mask(masks[0], out_px);
    std::vector<Grid<double>> results(masks.size());
    WallTimer t;
    std::vector<std::thread> threads;
    threads.reserve(masks.size());
    for (std::size_t i = 0; i < masks.size(); ++i) {
      threads.emplace_back([&, i] {
        results[i] = fast.aerial_from_mask(masks[i], out_px);
      });
    }
    for (auto& th : threads) th.join();
    return reqs / t.seconds();
  }();

  // --- served, open loop --------------------------------------------------
  const double served_open_tp = [&] {
    serve::LithoServer server(FastLitho{std::vector<Grid<cd>>(kernels)},
                              serve_options);
    (void)server.submit(masks[0], out_px).get();  // warm engines
    WallTimer t;
    std::vector<std::future<Grid<double>>> futs;
    futs.reserve(masks.size());
    for (const Grid<double>& m : masks) futs.push_back(server.submit(m, out_px));
    for (auto& f : futs) (void)f.get();
    const double tp = reqs / t.seconds();
    const serve::ShardStats st = server.stats();
    std::printf("  open loop:   %" PRIu64 " batches, %.1f avg occupancy, "
                "p50 %s, p99 %s\n",
                static_cast<std::uint64_t>(st.batches),
                st.mean_batch_occupancy,
                latency_str(st.p50_latency_us, st.latency_samples).c_str(),
                latency_str(st.p99_latency_us, st.latency_samples).c_str());
    return tp;
  }();

  // --- served, closed loop (pipelined clients) ----------------------------
  const double served_closed_tp = [&] {
    serve::LithoServer server(FastLitho{std::vector<Grid<cd>>(kernels)},
                              serve_options);
    (void)server.submit(masks[0], out_px).get();
    const int per_client = reqs / clients;
    WallTimer t;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::future<Grid<double>>> window;
        for (int i = 0; i < per_client; ++i) {
          window.push_back(server.submit(
              masks[static_cast<std::size_t>(c * per_client + i)], out_px));
          if (static_cast<int>(window.size()) >= depth) {
            for (auto& f : window) (void)f.get();
            window.clear();
          }
        }
        for (auto& f : window) (void)f.get();
      });
    }
    for (auto& th : threads) th.join();
    return clients * per_client / t.seconds();
  }();

  TablePrinter tp({"Mode", "reqs/s", "vs naive"}, 16);
  tp.row({"direct_serial", fmt(direct_tp, 1), fmt(direct_tp / naive_tp, 2) + "x"});
  tp.row({"naive_thread_per_request", fmt(naive_tp, 1), "1.00x"});
  tp.row({"served_open_loop", fmt(served_open_tp, 1),
          fmt(served_open_tp / naive_tp, 2) + "x"});
  tp.row({"served_closed_loop", fmt(served_closed_tp, 1),
          fmt(served_closed_tp / naive_tp, 2) + "x"});
  tp.rule();

  CsvWriter csv(out_dir() + "/serve_throughput.csv",
                {"mode", "reqs_per_s", "vs_naive"});
  csv.row({"direct_serial", fmt(direct_tp, 1), fmt(direct_tp / naive_tp, 2)});
  csv.row({"naive_thread_per_request", fmt(naive_tp, 1), "1.00"});
  csv.row({"served_open_loop", fmt(served_open_tp, 1),
           fmt(served_open_tp / naive_tp, 2)});
  csv.row({"served_closed_loop", fmt(served_closed_tp, 1),
           fmt(served_closed_tp / naive_tp, 2)});

  std::printf(
      "\nServing acceptance: open-loop served throughput is %.2fx the naive "
      "one-thread-per-request loop (target >= 1.3x).\n",
      served_open_tp / naive_tp);

  // --- overload: open-loop arrivals at ~over_factor x capacity ------------
  // Heavier per-request compute than the coalescing scenario above
  // (out_px 32 ≈ 4x out_px 16): overload shedding is about protecting the
  // *compute*, and at tiny per-request cost the load generator itself —
  // sharing this 1-core box with the shard worker — would distort goodput.
  // The SLO is sized for this class of box: ~6 ms of queueing budget plus
  // a worst-case tuned batch (~4 ms) plus normal scheduler noise lands
  // accepted p99 well under 20 ms, while the blind overload run sits at
  // several times that.  Longer phases (8k requests ≈ 1 s each) keep the
  // p99 estimate out of reach of a single multi-ms host stall.
  const int over_reqs = flags.get_int("over-reqs", 8192);
  const int over_out_px = flags.get_int("over-out-px", 32);
  const double over_factor = flags.get_double("over-factor", 2.0);
  const int slo_p99_us = flags.get_int("slo-p99-us", 20000);
  const int slo_queue_wait_us = flags.get_int("slo-queue-wait-us", 6000);

  using Clock = std::chrono::steady_clock;
  struct OverloadResult {
    double offered_rps = 0.0;
    double goodput_rps = 0.0;
    double p99_us = 0.0;
    std::uint64_t latency_samples = 0;
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    serve::ShardStats stats;
  };
  // rate == 0: unpaced — submit as fast as backpressure allows.  That run
  // both measures capacity (its goodput) and shows the failure mode this
  // scenario exists for: without admission control, overload means every
  // request pays the full queue_capacity of queueing delay.
  const auto run_overload = [&](bool admission, double rate) {
    serve::ServeOptions opts = serve_options;
    // Deep enough that, without admission control, queueing delay alone
    // blows the SLO.
    opts.queue_capacity = 256;
    if (admission) {
      serve::SloPolicy slo;
      slo.target_p99 = std::chrono::microseconds(slo_p99_us);
      slo.max_queue_wait = std::chrono::microseconds(slo_queue_wait_us);
      slo.autotune = true;
      // Past ~2x the default batch the sweep is fully amortized on this
      // workload, so larger batches only add latency: keep the tuner's
      // batch growth inside the SLO's interest.
      slo.tuner.max_batch = 2 * max_batch;
      opts.slo = slo;
    }
    serve::LithoServer server(FastLitho{std::vector<Grid<cd>>(kernels)}, opts);
    // Warm engines with an explicit far-future deadline: the SLO default
    // (submit + max_queue_wait) could shed this very first request if the
    // freshly spawned worker's first dequeue hits a scheduler stall, and
    // an unhandled DeadlineExceeded would abort the bench.
    (void)server
        .submit(masks[0], over_out_px, serve::RequestKind::kAerial,
                Clock::now() + std::chrono::hours(1))
        .get();
    std::vector<std::future<Grid<double>>> futs;
    futs.reserve(static_cast<std::size_t>(over_reqs));
    const auto start = Clock::now();
    for (int i = 0; i < over_reqs; ++i) {
      // Open loop: request i is due at a fixed offset from the start,
      // regardless of how the server is doing.  Pacing is checked once per
      // small burst — on this 1-core box a per-request sleep would charge
      // two context switches per arrival to the same core the shard worker
      // computes on.  Oversleeps are repaid by submitting the backlog
      // immediately, so the average rate holds.
      if (rate > 0.0 && i % 8 == 0) {
        const auto due = start + std::chrono::microseconds(
                                     static_cast<std::int64_t>(i * 1e6 / rate));
        if (Clock::now() < due) std::this_thread::sleep_until(due);
      }
      futs.push_back(server.submit(
          masks[static_cast<std::size_t>(i) % masks.size()], over_out_px));
    }
    const double inject_secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    // Goodput window ends when the server has resolved every accepted
    // request (completed == submitted implies empty queue and batcher) —
    // NOT when this thread has finished .get()ing 8k futures: rethrowing
    // thousands of shed exceptions is client-side bookkeeping that must
    // not count against the server.
    // 1 ms poll: each stats() call copies and sorts the latency ring, and
    // tighter polling would steal measurable CPU from the worker's drain
    // on this 1-core box — inflating the goodput denominator.
    while (true) {
      const serve::ShardStats st = server.stats();
      if (st.completed == st.submitted) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double drain_secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    OverloadResult r;
    for (auto& f : futs) {
      try {
        (void)f.get();
        ++r.ok;
      } catch (const serve::DeadlineExceeded&) {
        ++r.shed;
      }
    }
    r.offered_rps = over_reqs / inject_secs;
    r.goodput_rps = static_cast<double>(r.ok) / drain_secs;
    r.stats = server.stats();
    r.p99_us = r.stats.p99_latency_us;
    r.latency_samples = r.stats.latency_samples;
    return r;
  };

  // Each phase runs twice and keeps the higher-goodput window: the phases
  // are ~1 s apiece on a shared box, and a host stall landing in just one
  // of them would otherwise put multi-percent noise into the gated ratio.
  const auto best_of = [](OverloadResult a, OverloadResult b) {
    return a.goodput_rps >= b.goodput_rps ? std::move(a) : std::move(b);
  };
  const OverloadResult cap =
      best_of(run_overload(/*admission=*/false, /*rate=*/0.0),
              run_overload(/*admission=*/false, /*rate=*/0.0));
  const double capacity = cap.goodput_rps;
  const double offered_target = over_factor * capacity;
  std::printf("\n== Overload: open loop at %.1fx capacity (%.0f reqs/s "
              "offered), SLO p99 <= %d us, out_px %d ==\n",
              over_factor, offered_target, slo_p99_us, over_out_px);
  const OverloadResult adm =
      best_of(run_overload(/*admission=*/true, offered_target),
              run_overload(/*admission=*/true, offered_target));

  TablePrinter otp({"Mode", "offered r/s", "goodput r/s", "p99", "shed"}, 16);
  otp.row({"capacity_open_loop", fmt(cap.offered_rps, 1),
           fmt(cap.goodput_rps, 1), latency_str(cap.p99_us, cap.latency_samples),
           fmt(static_cast<double>(cap.shed), 0)});
  otp.row({"overload_admission", fmt(adm.offered_rps, 1),
           fmt(adm.goodput_rps, 1), latency_str(adm.p99_us, adm.latency_samples),
           fmt(static_cast<double>(adm.shed), 0)});
  otp.rule();
  std::printf("  capacity row = no admission control: at overload the full "
              "queue alone puts p99 at %.0f us\n", cap.p99_us);
  std::printf("  admission: %" PRIu64 " shed at submit, %" PRIu64
              " shed in queue, %" PRIu64 " autotune updates, tuned policy "
              "(max_batch %d, max_delay %.0f us)\n",
              adm.stats.shed.shed_at_submit, adm.stats.shed.shed_in_queue,
              adm.stats.autotune_updates, adm.stats.max_batch,
              adm.stats.max_delay_us);

  const double headroom = slo_p99_us / adm.p99_us;
  const double goodput_vs_capacity = adm.goodput_rps / capacity;
  CsvWriter slo_csv(out_dir() + "/serve_slo.csv",
                    {"mode", "offered_rps", "goodput_rps", "p99_us",
                     "slo_headroom", "goodput_vs_capacity"});
  slo_csv.row({"capacity_open_loop", fmt(cap.offered_rps, 1),
               fmt(cap.goodput_rps, 1), fmt(cap.p99_us, 0), "", ""});
  slo_csv.row({"overload_admission", fmt(adm.offered_rps, 1),
               fmt(adm.goodput_rps, 1), fmt(adm.p99_us, 0), fmt(headroom, 2),
               fmt(goodput_vs_capacity, 2)});

  std::printf(
      "\nOverload acceptance: accepted-request p99 %.0f us vs SLO %d us "
      "(headroom %.2fx, target >= 1x); goodput %.2fx measured capacity "
      "(target >= 0.9x).\n",
      adm.p99_us, slo_p99_us, headroom, goodput_vs_capacity);

  // --- observability overhead: tracing off vs on (ISSUE 8) ----------------
  // Same batch-friendly open-loop workload as the throughput scenario —
  // the regime where per-request bookkeeping rivals compute, i.e. where
  // instrumentation overhead would show if it existed.  trace_off is the
  // production default (metrics counters/histogram always on, tracing
  // one branch per site); trace_on_sampled adds span timestamps at the
  // default 1/16 sampling.  overhead_vs_off = off_tp / on_tp is the gated
  // ratio (ceiling 1.05 in bench/check_baselines.py): instrumented serving
  // must keep >= 0.95x the uninstrumented throughput.
  const auto run_obs = [&](bool trace_on) {
    serve::ServeOptions opts = serve_options;
    opts.trace.enabled = trace_on;  // default sample_every / ring capacity
    serve::LithoServer server(FastLitho{std::vector<Grid<cd>>(kernels)}, opts);
    (void)server.submit(masks[0], out_px).get();  // warm engines
    WallTimer t;
    std::vector<std::future<Grid<double>>> futs;
    futs.reserve(masks.size());
    for (const Grid<double>& m : masks) {
      futs.push_back(server.submit(m, out_px));
    }
    for (auto& f : futs) (void)f.get();
    return reqs / t.seconds();
  };
  // Interleaved best-of-two per configuration: the phases are short, and a
  // host stall landing in one run would otherwise dominate the gated ratio.
  double off_tp = run_obs(false);
  double on_tp = run_obs(true);
  off_tp = std::max(off_tp, run_obs(false));
  on_tp = std::max(on_tp, run_obs(true));
  const double overhead_vs_off = off_tp / on_tp;

  std::printf("\n== Observability overhead: tracing off vs on "
              "(default 1/16 sampling) ==\n");
  TablePrinter obs_tp({"Mode", "reqs/s", "vs off"}, 16);
  obs_tp.row({"trace_off", fmt(off_tp, 1), "1.00x"});
  obs_tp.row({"trace_on_sampled", fmt(on_tp, 1),
              fmt(overhead_vs_off, 2) + "x"});
  obs_tp.rule();

  CsvWriter obs_csv(out_dir() + "/obs_overhead.csv",
                    {"mode", "reqs_per_s", "overhead_vs_off"});
  obs_csv.row({"trace_off", fmt(off_tp, 1), "1.00"});
  obs_csv.row({"trace_on_sampled", fmt(on_tp, 1), fmt(overhead_vs_off, 2)});

  std::printf(
      "\nObservability acceptance: trace-off throughput is %.2fx the "
      "trace-on run (ceiling <= 1.05x, i.e. instrumented serving keeps "
      ">= 0.95x uninstrumented throughput).\n",
      overhead_vs_off);
  return 0;
}
