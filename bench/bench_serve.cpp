// Serving-layer throughput: LithoServer micro-batching vs naive
// concurrency (DESIGN.md §7.6).
//
// Kernel values do not affect runtime, so the kernel set is synthesized
// directly (no training) at the golden engine's shape class.  Four
// strategies answer the same stream of mask->aerial requests:
//
//   direct_serial            one thread, one aerial_from_mask per request —
//                            the raw compute floor, no serving overhead.
//   naive_thread_per_request the obvious "server": spawn a thread per
//                            request, every request computes independently.
//                            This is the baseline the serving layer must
//                            beat (vs_naive column, acceptance >= 1.3x for
//                            served_open_loop).
//   served_open_loop         LithoServer, one submitter streaming every
//                            request through the bounded queue (backpressure
//                            paces it), then collecting futures — the
//                            batch-friendliest load.
//   served_closed_loop       LithoServer, N clients each keeping a small
//                            pipeline of outstanding requests (closed loop,
//                            like examples/serve_demo.cpp).
//
// The acceptance number is recorded in bench/baselines/serve_throughput.csv
// and gated by bench/check_baselines.py.

#include <cinttypes>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "common.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "io/csv.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "nitho/fast_litho.hpp"
#include "serve/server.hpp"

using namespace nitho;
using namespace nitho::bench;

namespace {

std::vector<Grid<cd>> synth_kernels(int rank, int kdim, Rng& rng) {
  std::vector<Grid<cd>> kernels;
  kernels.reserve(static_cast<std::size_t>(rank));
  for (int k = 0; k < rank; ++k) {
    Grid<cd> g(kdim, kdim);
    for (auto& z : g) z = cd(rng.normal(), rng.normal());
    kernels.push_back(std::move(g));
  }
  return kernels;
}

std::vector<Grid<double>> synth_masks(int count, int px, Rng& rng) {
  std::vector<Grid<double>> masks;
  masks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Grid<double> m(px, px, 0.0);
    // A few random rectangles, like a contact/metal tile.
    for (int r = 0; r < 6; ++r) {
      const int h = rng.randint(2, px / 4), w = rng.randint(2, px / 4);
      const int r0 = rng.randint(0, px - h), c0 = rng.randint(0, px - w);
      for (int y = r0; y < r0 + h; ++y)
        for (int x = c0; x < c0 + w; ++x) m(y, x) = 1.0;
    }
    masks.push_back(std::move(m));
  }
  return masks;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  // Default workload: batch-friendly load — many small tiles (an OPC-style
  // tile sweep), where per-request overhead rivals compute and coalescing
  // pays.  At heavier per-request compute (e.g. --mask-px 64 --rank 16)
  // every strategy converges on the compute floor and the ratio tends to 1.
  const int reqs = flags.get_int("reqs", 512);
  const int mask_px = flags.get_int("mask-px", 32);
  const int out_px = flags.get_int("out-px", 16);
  const int rank = flags.get_int("rank", 8);
  const int kdim = flags.get_int("kdim", 9);
  const int shards = flags.get_int("shards", 1);
  const int max_batch = flags.get_int("max-batch", 16);
  const int max_delay_us = flags.get_int("max-delay-us", 300);
  const int clients = flags.get_int("clients", 4);
  const int depth = flags.get_int("depth", 16);

  std::printf("== Serving throughput: micro-batched LithoServer vs naive ==\n");
  std::printf("reqs=%d mask=%dpx out=%dpx rank=%d kdim=%d shards=%d "
              "max_batch=%d max_delay=%dus\n\n",
              reqs, mask_px, out_px, rank, kdim, shards, max_batch,
              max_delay_us);

  Rng rng(20260730);
  const std::vector<Grid<cd>> kernels = synth_kernels(rank, kdim, rng);
  const std::vector<Grid<double>> masks = synth_masks(reqs, mask_px, rng);

  const auto serve_options = [&] {
    serve::ServeOptions opts;
    opts.shards = shards;
    opts.queue_capacity = 64;
    opts.batch.max_batch = max_batch;
    opts.batch.max_delay = std::chrono::microseconds(max_delay_us);
    return opts;
  }();

  // --- direct serial loop (compute floor) --------------------------------
  const double direct_tp = [&] {
    const FastLitho fast{std::vector<Grid<cd>>(kernels)};
    (void)fast.aerial_from_mask(masks[0], out_px);  // warm plans + cache
    WallTimer t;
    for (const Grid<double>& m : masks) (void)fast.aerial_from_mask(m, out_px);
    return reqs / t.seconds();
  }();

  // --- naive one-thread-per-request loop ---------------------------------
  const double naive_tp = [&] {
    const FastLitho fast{std::vector<Grid<cd>>(kernels)};
    (void)fast.aerial_from_mask(masks[0], out_px);
    std::vector<Grid<double>> results(masks.size());
    WallTimer t;
    std::vector<std::thread> threads;
    threads.reserve(masks.size());
    for (std::size_t i = 0; i < masks.size(); ++i) {
      threads.emplace_back([&, i] {
        results[i] = fast.aerial_from_mask(masks[i], out_px);
      });
    }
    for (auto& th : threads) th.join();
    return reqs / t.seconds();
  }();

  // --- served, open loop --------------------------------------------------
  const double served_open_tp = [&] {
    serve::LithoServer server(FastLitho{std::vector<Grid<cd>>(kernels)},
                              serve_options);
    (void)server.submit(masks[0], out_px).get();  // warm engines
    WallTimer t;
    std::vector<std::future<Grid<double>>> futs;
    futs.reserve(masks.size());
    for (const Grid<double>& m : masks) futs.push_back(server.submit(m, out_px));
    for (auto& f : futs) (void)f.get();
    const double tp = reqs / t.seconds();
    const serve::ShardStats st = server.stats();
    std::printf("  open loop:   %" PRIu64 " batches, %.1f avg occupancy, "
                "p50 %.0f us, p99 %.0f us\n",
                static_cast<std::uint64_t>(st.batches),
                st.mean_batch_occupancy, st.p50_latency_us, st.p99_latency_us);
    return tp;
  }();

  // --- served, closed loop (pipelined clients) ----------------------------
  const double served_closed_tp = [&] {
    serve::LithoServer server(FastLitho{std::vector<Grid<cd>>(kernels)},
                              serve_options);
    (void)server.submit(masks[0], out_px).get();
    const int per_client = reqs / clients;
    WallTimer t;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::future<Grid<double>>> window;
        for (int i = 0; i < per_client; ++i) {
          window.push_back(server.submit(
              masks[static_cast<std::size_t>(c * per_client + i)], out_px));
          if (static_cast<int>(window.size()) >= depth) {
            for (auto& f : window) (void)f.get();
            window.clear();
          }
        }
        for (auto& f : window) (void)f.get();
      });
    }
    for (auto& th : threads) th.join();
    return clients * per_client / t.seconds();
  }();

  TablePrinter tp({"Mode", "reqs/s", "vs naive"}, 16);
  tp.row({"direct_serial", fmt(direct_tp, 1), fmt(direct_tp / naive_tp, 2) + "x"});
  tp.row({"naive_thread_per_request", fmt(naive_tp, 1), "1.00x"});
  tp.row({"served_open_loop", fmt(served_open_tp, 1),
          fmt(served_open_tp / naive_tp, 2) + "x"});
  tp.row({"served_closed_loop", fmt(served_closed_tp, 1),
          fmt(served_closed_tp / naive_tp, 2) + "x"});
  tp.rule();

  CsvWriter csv(out_dir() + "/serve_throughput.csv",
                {"mode", "reqs_per_s", "vs_naive"});
  csv.row({"direct_serial", fmt(direct_tp, 1), fmt(direct_tp / naive_tp, 2)});
  csv.row({"naive_thread_per_request", fmt(naive_tp, 1), "1.00"});
  csv.row({"served_open_loop", fmt(served_open_tp, 1),
           fmt(served_open_tp / naive_tp, 2)});
  csv.row({"served_closed_loop", fmt(served_closed_tp, 1),
           fmt(served_closed_tp / naive_tp, 2)});

  std::printf(
      "\nServing acceptance: open-loop served throughput is %.2fx the naive "
      "one-thread-per-request loop (target >= 1.3x).\n",
      served_open_tp / naive_tp);
  return 0;
}
