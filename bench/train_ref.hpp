#pragma once
// Verbatim reimplementation of the pre-batching Algorithm-1 training loop:
// one socs_field / abs2_sum0 / mse_loss autodiff chain per mask per step,
// reduced through add().  Kept as the measurement baseline for
// bench_train / bench_micro (the bit-identity pin lives in
// tests/test_nitho.cpp).  Do not "fix" or modernize this loop — its point
// is to preserve the historical arithmetic and allocation behavior.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/timer.hpp"
#include "nitho/trainer.hpp"
#include "nn/ops.hpp"
#include "nn/ops_fft.hpp"
#include "nn/optimizer.hpp"

namespace nitho::bench {

inline TrainStats legacy_train_nitho(NithoModel& model, const TrainingSet& set,
                                     const NithoTrainConfig& cfg) {
  const int n = set.size();
  const int px = set.train_px;
  nn::Adam opt(model.parameters(), cfg.lr);
  Rng rng(cfg.seed);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  TrainStats stats;
  WallTimer timer;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int b = 0; b < n; b += cfg.batch) {
      const int count = std::min(cfg.batch, n - b);
      opt.zero_grad();
      // One field evaluation per step (the kernels do not depend on masks).
      const nn::Var kernels = model.predict_kernels();
      nn::Var loss;
      for (int j = 0; j < count; ++j) {
        const int i = order[static_cast<std::size_t>(b + j)];
        nn::Var pred = nn::abs2_sum0(nn::socs_field(
            kernels, set.spectra[static_cast<std::size_t>(i)], px));
        nn::Var l =
            nn::mse_loss(pred, set.targets[static_cast<std::size_t>(i)]);
        loss = loss ? nn::add(loss, l) : l;
      }
      loss = nn::scale(loss, 1.0f / static_cast<float>(count));
      nn::backward(loss);
      opt.step();
      epoch_loss += loss->value[0];
      ++batches;
      ++stats.steps;
    }
    stats.epoch_losses.push_back(epoch_loss / std::max(1, batches));
    // Cosine decay to 10% of the base learning rate.
    const double t = static_cast<double>(epoch + 1) / cfg.epochs;
    opt.set_lr(
        static_cast<float>(cfg.lr * (0.1 + 0.45 * (1.0 + std::cos(kPi * t)))));
  }
  stats.final_loss = stats.epoch_losses.back();
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace nitho::bench
