// Table IV: comparison on out-of-distribution (OOD) datasets.
//
// Train on X, test on Y with a different mask distribution: B1 -> B1opc,
// B2m -> B2v, B2v -> B2m.  "Drop" is the change versus the in-distribution
// test result.  Reuses Table III's cached models when available.

#include <cstdio>

#include "common.hpp"
#include "io/csv.hpp"

using namespace nitho;
using namespace nitho::bench;

namespace {

struct PaperRow {
  const char* train;
  const char* test;
  double tempo_mpa, tempo_miou, doinn_mpa, doinn_miou, nitho_mpa, nitho_miou;
};

constexpr PaperRow kPaper[] = {
    {"B1", "B1opc", 90.25, 86.15, 98.03, 94.76, 99.43, 99.17},
    {"B2m", "B2v", 99.40, 71.86, 99.64, 78.31, 99.58, 97.33},
    {"B2v", "B2m", 66.06, 55.82, 76.43, 68.73, 98.08, 97.18},
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchEnv env(BenchConfig::from_flags(flags));
  std::printf("== Table IV: comparison with SOTA on OOD datasets ==\n\n");

  const DatasetKind pairs[3][2] = {
      {DatasetKind::B1, DatasetKind::B1opc},
      {DatasetKind::B2m, DatasetKind::B2v},
      {DatasetKind::B2v, DatasetKind::B2m},
  };

  CsvWriter csv(out_dir() + "/table4_ood.csv",
                {"train", "test", "model", "mpa_pct", "miou_pct", "drop_mpa",
                 "drop_miou"});
  TablePrinter tp({"Train", "Test", "Model", "mPA%", "mIOU%", "dropPA",
                   "dropIOU", "paperPA", "paperIOU"},
                  10);

  double avg_drop_miou[3] = {0, 0, 0};
  for (int p = 0; p < 3; ++p) {
    const DatasetKind train_kind = pairs[p][0];
    const DatasetKind test_kind = pairs[p][1];
    const std::string tag = dataset_name(train_kind);
    const auto train = sample_ptrs(env.train_set(train_kind));

    auto tempo = env.trained_tempo(tag, train);
    auto doinn = env.trained_doinn(tag, train);
    auto nitho = env.trained_nitho(tag, train);

    // In-distribution reference: B1opc has no ID test in the paper either;
    // use the training family's test split.
    const Dataset& id_test = env.test_set(train_kind);
    const Dataset& ood_test = env.test_set(test_kind);

    const EvalResult id[3] = {env.eval_image(*tempo, id_test),
                              env.eval_image(*doinn, id_test),
                              env.eval_nitho(*nitho, id_test)};
    const EvalResult ood[3] = {env.eval_image(*tempo, ood_test),
                               env.eval_image(*doinn, ood_test),
                               env.eval_nitho(*nitho, ood_test)};

    const char* names[3] = {"TEMPO", "DOINN", "Nitho"};
    const double paper_pa[3] = {kPaper[p].tempo_mpa, kPaper[p].doinn_mpa,
                                kPaper[p].nitho_mpa};
    const double paper_iou[3] = {kPaper[p].tempo_miou, kPaper[p].doinn_miou,
                                 kPaper[p].nitho_miou};
    for (int m = 0; m < 3; ++m) {
      const double drop_pa = 100.0 * (id[m].mpa - ood[m].mpa);
      const double drop_iou = 100.0 * (id[m].miou - ood[m].miou);
      avg_drop_miou[m] += drop_iou / 3.0;
      tp.row({dataset_name(train_kind), dataset_name(test_kind), names[m],
              fmt(ood[m].mpa * 100.0, 2), fmt(ood[m].miou * 100.0, 2),
              fmt(drop_pa, 2), fmt(drop_iou, 2), fmt(paper_pa[m], 2),
              fmt(paper_iou[m], 2)});
      csv.row({dataset_name(train_kind), dataset_name(test_kind), names[m],
               fmt(ood[m].mpa * 100.0, 3), fmt(ood[m].miou * 100.0, 3),
               fmt(drop_pa, 3), fmt(drop_iou, 3)});
    }
    tp.rule();
  }

  std::printf("\nAverage mIOU drop: TEMPO %.2f  DOINN %.2f  Nitho %.2f\n",
              avg_drop_miou[0], avg_drop_miou[1], avg_drop_miou[2]);
  std::printf(
      "Paper shape: Nitho's average drop is ~1%% while TEMPO/DOINN drop\n"
      "~22%%/17%% mIOU — the learned optical kernels are mask-independent.\n");
  return 0;
}
