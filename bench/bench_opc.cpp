// OPC optimizer throughput: the batched OpcEngine vs the legacy per-mask
// ILT loop (DESIGN.md §10.4).
//
// Both sides run the identical optimization — sigmoid(theta) -> cropped
// spectrum -> SOCS aerial -> imaging MSE + binarization penalty, Adam —
// and produce bit-identical thetas (pinned by test_opc), so the comparison
// is pure engine overhead at exactly equal quality:
//
//   per_mask   one autodiff graph per (mask, iteration), the structure of
//              examples/inverse_litho.cpp before the engine existed: fresh
//              node/tensor allocations per step, one FFT column pass over
//              the full plane per op, no batching.
//   batched    one OpcEngine step per iteration for the whole batch: one
//              graph through the batched FFT ops (pruned column passes,
//              arena-recycled storage), the task grid parallelized across
//              masks x kernels.
//
// The throughput unit is mask-iterations per second (masks/s at one
// iteration each).  mean_epe_px is reported for both from the same
// evaluator at the final thetas — equal by construction, recorded so a
// future change that breaks the equivalence is visible in the CSV.  The
// acceptance ratio (batched >= 1.3x per_mask) is recorded in
// bench/baselines/opc_throughput.csv and gated by check_baselines.py.

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "common/flags.hpp"
#include "fft/spectral.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "io/csv.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "nn/ops.hpp"
#include "nn/ops_fft.hpp"
#include "nn/optimizer.hpp"
#include "opc/engine.hpp"

using namespace nitho;
using namespace nitho::bench;

namespace {

std::vector<Grid<cd>> synth_kernels(int rank, int kdim, Rng& rng) {
  std::vector<Grid<cd>> kernels;
  kernels.reserve(static_cast<std::size_t>(rank));
  for (int k = 0; k < rank; ++k) {
    Grid<cd> g(kdim, kdim);
    for (auto& z : g) z = cd(rng.normal(), rng.normal());
    kernels.push_back(std::move(g));
  }
  return kernels;
}

std::vector<Grid<double>> synth_intents(int count, int px, Rng& rng) {
  std::vector<Grid<double>> intents;
  intents.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Grid<double> m(px, px, 0.0);
    for (int r = 0; r < 6; ++r) {
      const int h = rng.randint(2, px / 4), w = rng.randint(2, px / 4);
      const int r0 = rng.randint(0, px - h), c0 = rng.randint(0, px - w);
      for (int y = r0; y < r0 + h; ++y)
        for (int x = c0; x < c0 + w; ++x) m(y, x) = 1.0;
    }
    intents.push_back(std::move(m));
  }
  return intents;
}

/// The legacy loop: per-mask graphs, no arena, no batching (the structure
/// test_opc pins the engine against).  Returns the final thetas flattened
/// in batch order.
std::vector<float> run_per_mask(const std::vector<Grid<cd>>& kernels,
                                const std::vector<Grid<double>>& intents,
                                const opc::OpcConfig& cfg, int iters) {
  const int kdim = kernels[0].rows();
  const int s = cfg.mask_px;
  nn::Tensor kt({static_cast<int>(kernels.size()), kdim, kdim, 2});
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    for (std::size_t p = 0; p < kernels[i].size(); ++p) {
      const std::int64_t base =
          static_cast<std::int64_t>((i * kernels[i].size() + p) * 2);
      kt[base] = static_cast<float>(kernels[i][p].real());
      kt[base + 1] = static_cast<float>(kernels[i][p].imag());
    }
  }
  std::vector<float> thetas;
  thetas.reserve(intents.size() * static_cast<std::size_t>(s) * s);
  for (const Grid<double>& intended : intents) {
    nn::Tensor target({cfg.sim_px, cfg.sim_px});
    const Grid<double> down = downsample_area(intended, s / cfg.sim_px);
    for (std::size_t i = 0; i < down.size(); ++i) {
      target[static_cast<std::int64_t>(i)] =
          down[i] > 0.5 ? cfg.target_bright : cfg.target_dark;
    }
    nn::Tensor theta({s, s});
    for (std::size_t i = 0; i < intended.size(); ++i) {
      theta[static_cast<std::int64_t>(i)] =
          intended[i] > 0.5 ? cfg.theta_init : -cfg.theta_init;
    }
    nn::Var vtheta = nn::make_leaf(theta, true);
    nn::Adam opt({vtheta}, cfg.lr);
    for (int it = 0; it < iters; ++it) {
      opt.zero_grad();
      nn::Var mask = nn::sigmoid(vtheta);
      nn::Var spectrum = nn::fft2c_crop(mask, kdim);
      nn::Var aerial = nn::abs2_sum0(
          nn::socs_field_from_spectrum(spectrum, kt, cfg.sim_px));
      nn::Var fit = nn::mse_loss(aerial, target);
      nn::Var bin = nn::sub(nn::mean(mask), nn::mean(nn::square(mask)));
      nn::Var loss = nn::add(fit, nn::scale(bin, cfg.bin_weight));
      nn::backward(loss);
      opt.step();
    }
    const float* p = vtheta->value.data();
    thetas.insert(thetas.end(), p, p + vtheta->value.numel());
  }
  return thetas;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  log_simd_arm();
  const int batch = flags.get_int("batch", 8);
  const int iters = flags.get_int("iters", 30);
  const int mask_px = flags.get_int("mask-px", 64);
  const int sim_px = flags.get_int("sim-px", 32);
  const int rank = flags.get_int("rank", 8);
  const int kdim = flags.get_int("kdim", 9);

  std::printf("== OPC throughput: batched OpcEngine vs per-mask ILT ==\n");
  std::printf("batch=%d iters=%d mask=%dpx sim=%dpx rank=%d kdim=%d\n\n",
              batch, iters, mask_px, sim_px, rank, kdim);

  Rng rng(20260807);
  const auto kernels = std::make_shared<const std::vector<Grid<cd>>>(
      synth_kernels(rank, kdim, rng));
  const std::vector<Grid<double>> intents =
      synth_intents(batch, mask_px, rng);

  opc::OpcConfig cfg;
  cfg.mask_px = mask_px;
  cfg.sim_px = sim_px;

  // Warm the shared FFT plan / workspace caches so neither side pays
  // first-touch setup inside its timed region.
  (void)run_per_mask(*kernels, {intents[0]}, cfg, 1);
  {
    opc::OpcEngine warm(kernels, cfg);
    warm.start(intents);
    (void)warm.step();
  }

  const double total = static_cast<double>(batch) * iters;

  WallTimer t_per;
  const std::vector<float> theta_per =
      run_per_mask(*kernels, intents, cfg, iters);
  const double per_mask_tp = total / t_per.seconds();

  opc::OpcEngine engine(kernels, cfg);
  engine.start(intents);
  WallTimer t_batched;
  for (int it = 0; it < iters; ++it) (void)engine.step();
  const double batched_tp = total / t_batched.seconds();
  const double epe_batched = engine.mean_epe_px();

  // Score the per-mask thetas through the identical evaluator.
  engine.load_theta(theta_per);
  const double epe_per_mask = engine.mean_epe_px();

  const double ratio = batched_tp / per_mask_tp;
  TablePrinter tp({"Mode", "mask-iters/s", "mean EPE px", "vs per_mask"}, 14);
  tp.row({"per_mask", fmt(per_mask_tp, 1), fmt(epe_per_mask, 3), "1.00x"});
  tp.row({"batched", fmt(batched_tp, 1), fmt(epe_batched, 3),
          fmt(ratio, 2) + "x"});

  CsvWriter csv(out_dir() + "/opc_throughput.csv",
                {"mode", "masks_per_s", "mean_epe_px", "vs_permask"});
  csv.row({"per_mask", fmt(per_mask_tp, 1), fmt(epe_per_mask, 3), "1.00"});
  csv.row({"batched", fmt(batched_tp, 1), fmt(epe_batched, 3),
           fmt(ratio, 2)});
  std::printf("\nwrote %s/opc_throughput.csv\n", out_dir().c_str());
  return 0;
}
