// Table V: ablation study for positional encoding on the B1 dataset.
// Trains Nitho with (a) no PE (plain Gaussian projection), (b) NeRF's
// axis-aligned PE, (c) the paper's complex Gaussian RFF PE.

#include <cstdio>

#include "common.hpp"
#include "io/csv.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchEnv env(BenchConfig::from_flags(flags));
  std::printf("== Table V: positional-encoding ablation (B1) ==\n\n");

  const auto train = sample_ptrs(env.train_set(DatasetKind::B1));
  const Dataset& test = env.test_set(DatasetKind::B1);

  struct Variant {
    EncodingKind kind;
    const char* label;
    double paper_mse, paper_me, paper_psnr;
  };
  const Variant variants[] = {
      {EncodingKind::None, "None", 537.32, 19.38, 25.33},
      {EncodingKind::NerfPe, "NeRF PE", 1.79, 0.81, 48.83},
      {EncodingKind::GaussianRff, "Ours (RFF)", 1.32, 0.51, 50.75},
  };

  CsvWriter csv(out_dir() + "/table5_pe_ablation.csv",
                {"encoding", "mse_1e5", "me_1e2", "psnr_db"});
  TablePrinter tp({"Type", "MSE(1e-5)", "ME(1e-2)", "PSNR", "paperMSE",
                   "paperPSNR"},
                  12);
  for (const Variant& v : variants) {
    // The RFF variant is exactly Table III's B1 model; share its cache slot.
    const std::string tag =
        v.kind == EncodingKind::GaussianRff
            ? "B1"
            : "B1-pe" + std::to_string(static_cast<int>(v.kind));
    auto model = env.trained_nitho(tag, train, -1, -1, -1, v.kind);
    const EvalResult r = env.eval_nitho(*model, test);
    tp.row({v.label, fmt(r.mse * 1e5, 2), fmt(r.max_error * 1e2, 2),
            fmt(r.psnr, 2), fmt(v.paper_mse, 2), fmt(v.paper_psnr, 2)});
    csv.row({v.label, fmt(r.mse * 1e5, 3), fmt(r.max_error * 1e2, 3),
             fmt(r.psnr, 3)});
  }
  tp.rule();
  std::printf(
      "\nPaper shape: no PE collapses (25 dB); NeRF PE recovers ~49 dB; the\n"
      "isotropic complex RFF PE is best (50.75 dB).\n");
  return 0;
}
