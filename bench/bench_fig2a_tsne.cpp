// Fig. 2(a): t-SNE of the four dataset distributions.
// Rasterizes tiles of each family, reduces 32x32 density features with PCA
// and embeds with t-SNE; prints an ASCII scatter and cluster separation
// statistics, and writes the embedding to CSV.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/pca.hpp"
#include "analysis/tsne.hpp"
#include "common.hpp"
#include "common/rng.hpp"
#include "fft/spectral.hpp"
#include "io/csv.hpp"
#include "layout/raster.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int per_family = flags.get_int("per-family", 36);
  std::printf("== Fig. 2(a): t-SNE of dataset distributions ==\n\n");

  const DatasetKind kinds[] = {DatasetKind::B1, DatasetKind::B1opc,
                               DatasetKind::B2m, DatasetKind::B2v};
  const int n = 4 * per_family;
  // Features: centered log-magnitude spectrum of the mask.  Pattern pitch,
  // orientation and decoration (serif/SRAF high frequencies) live here, so
  // the four families separate the way the paper's Fig. 2(a) shows; raw
  // pixel features are dominated by within-family placement randomness.
  const int sdim = 25;
  const int fdim = sdim * sdim;
  Grid<double> features(n, fdim);
  std::vector<int> labels(static_cast<std::size_t>(n));
  int row = 0;
  for (int k = 0; k < 4; ++k) {
    Rng rng(100 + k);
    for (int i = 0; i < per_family; ++i, ++row) {
      const Layout l = make_layout(kinds[k], 1024, rng);
      const Grid<double> mask = downsample_area(rasterize(l, 4), 2);  // 128^2
      const Grid<cd> spec = fft2_crop_centered(mask, sdim);
      for (int f = 0; f < fdim; ++f) {
        features(row, f) =
            std::log1p(std::abs(spec[static_cast<std::size_t>(f)]) /
                       static_cast<double>(mask.size()) * 1e3);
      }
      labels[static_cast<std::size_t>(row)] = k;
    }
  }

  const PcaResult reduced = pca(features, 24);
  TsneConfig tc;
  tc.perplexity = 18.0;
  tc.iters = 350;
  const Grid<double> y = tsne(reduced.projected, tc);

  CsvWriter csv(out_dir() + "/fig2a_tsne.csv", {"family", "x", "y"});
  for (int i = 0; i < n; ++i) {
    csv.row({dataset_name(kinds[labels[static_cast<std::size_t>(i)]]),
             fmt(y(i, 0), 4), fmt(y(i, 1), 4)});
  }

  // ASCII scatter (1=B1, o=B1opc, m=B2m, v=B2v).
  const char glyphs[4] = {'1', 'o', 'm', 'v'};
  const int w = 68, h = 26;
  double lo0 = 1e18, hi0 = -1e18, lo1 = 1e18, hi1 = -1e18;
  for (int i = 0; i < n; ++i) {
    lo0 = std::min(lo0, y(i, 0));
    hi0 = std::max(hi0, y(i, 0));
    lo1 = std::min(lo1, y(i, 1));
    hi1 = std::max(hi1, y(i, 1));
  }
  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));
  for (int i = 0; i < n; ++i) {
    const int cx = static_cast<int>((y(i, 0) - lo0) / (hi0 - lo0 + 1e-12) * (w - 1));
    const int cy = static_cast<int>((y(i, 1) - lo1) / (hi1 - lo1 + 1e-12) * (h - 1));
    canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] =
        glyphs[labels[static_cast<std::size_t>(i)]];
  }
  for (const auto& line : canvas) std::printf("|%s|\n", line.c_str());
  std::printf("legend: 1=B1  o=B1opc  m=B2m  v=B2v\n\n");

  // Quantitative separation: between-centroid distance vs mean within-spread.
  double cx[4] = {0, 0, 0, 0}, cy[4] = {0, 0, 0, 0}, spread[4] = {0, 0, 0, 0};
  for (int i = 0; i < n; ++i) {
    cx[labels[static_cast<std::size_t>(i)]] += y(i, 0) / per_family;
    cy[labels[static_cast<std::size_t>(i)]] += y(i, 1) / per_family;
  }
  for (int i = 0; i < n; ++i) {
    const int k = labels[static_cast<std::size_t>(i)];
    spread[k] += std::hypot(y(i, 0) - cx[k], y(i, 1) - cy[k]) / per_family;
  }
  TablePrinter tp({"pair", "centroid-dist", "mean-spread", "separated"}, 15);
  int separated = 0, total = 0;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      const double dist = std::hypot(cx[a] - cx[b], cy[a] - cy[b]);
      const double s = 0.5 * (spread[a] + spread[b]);
      const bool ok = dist > 1.5 * s;
      separated += ok;
      ++total;
      tp.row({dataset_name(kinds[a]) + "-" + dataset_name(kinds[b]),
              fmt(dist, 2), fmt(s, 2), ok ? "yes" : "no"});
    }
  }
  std::printf("\n%d / %d family pairs separated (paper: all four families\n"
              "form distinct clusters; B1 and B1opc are adjacent).\n",
              separated, total);
  return 0;
}
