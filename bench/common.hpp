#pragma once
// Shared infrastructure for the per-table / per-figure bench harnesses.
//
// Scale: every bench runs the paper's optics (lambda=193 nm, NA=1.35,
// annular 0.5/0.8) on 1 um x 1 um tiles rasterized at 1 nm (DESIGN.md §3),
// giving Eq.-10 kernels of 29x29.  Datasets are generated fresh per run;
// trained models are cached under bench_cache/ so later benches (Table IV,
// Fig. 2b, ...) reuse Table III's training instead of repeating it.  CSVs
// land in bench_out/.

#include <memory>
#include <string>
#include <vector>

#include "baselines/doinn.hpp"
#include "baselines/tempo.hpp"
#include "common/flags.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/model.hpp"
#include "nitho/trainer.hpp"

namespace nitho::bench {

/// Bench-wide knobs, overridable from the command line:
///   --train N --test N --nitho-epochs N --baseline-epochs N --quick --full
struct BenchConfig {
  int train_count = 32;
  int test_count = 8;
  int nitho_epochs = 60;
  int tempo_epochs = 8;
  int doinn_epochs = 10;
  /// Baseline training/inference grid.  32 keeps the deep U-Net trainable
  /// within the CPU budget (at 64 it regresses to mean-prediction); outputs
  /// are spectrally upsampled to the analysis grid for metrics.
  int baseline_px = 32;
  std::uint64_t seed = 2023;

  static BenchConfig from_flags(const Flags& flags);
};

/// One shared golden engine + dataset memoization per process.
class BenchEnv {
 public:
  explicit BenchEnv(const BenchConfig& cfg);

  const BenchConfig& cfg() const { return cfg_; }
  const GoldenEngine& engine() const { return *engine_; }
  const LithoConfig& litho() const { return engine_->config(); }
  double resist_threshold() const { return litho().resist.threshold; }

  /// Memoized: train split (seed) and test split (seed + 1000) per family.
  const Dataset& train_set(DatasetKind kind);
  const Dataset& test_set(DatasetKind kind);

  /// Default Nitho model (Table I size point: ~0.08 MB).
  NithoConfig nitho_config() const;

  /// Trains (or loads from bench_cache/) a Nitho model on the given samples.
  /// tag identifies the training set in the cache key.
  std::unique_ptr<NithoModel> trained_nitho(const std::string& tag,
                                            const std::vector<const Sample*>& data,
                                            int epochs = -1, int rank = -1,
                                            int kernel_dim = -1,
                                            EncodingKind pe = EncodingKind::GaussianRff);

  std::unique_ptr<TempoModel> trained_tempo(const std::string& tag,
                                            const std::vector<const Sample*>& data,
                                            int epochs = -1);
  std::unique_ptr<DoinnModel> trained_doinn(const std::string& tag,
                                            const std::vector<const Sample*>& data,
                                            int epochs = -1);

  /// Evaluation at the analysis grid, averaged over a test set.
  EvalResult eval_nitho(const NithoModel& model, const Dataset& test);
  EvalResult eval_image(const ImageModel& model, const Dataset& test);

 private:
  BenchConfig cfg_;
  std::unique_ptr<GoldenEngine> engine_;
  std::vector<std::pair<std::string, std::unique_ptr<Dataset>>> cache_;

  const Dataset& dataset(DatasetKind kind, int count, std::uint64_t seed,
                         const std::string& key);
};

/// Fixed-width table printer for paper-style output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int width = 11);
  void row(const std::vector<std::string>& cells);
  void rule();

 private:
  std::size_t cols_;
  int width_;
};

std::string fmt(double v, int precision = 2);

/// Output directories (created on demand): bench_out/, bench_cache/.
std::string out_dir();
std::string cache_dir();

/// Prints "[simd] dispatch arm: <scalar|sse2|avx2>" and returns the arm
/// name, so every gated bench logs — and its CSV can record — which kernel
/// arm produced the numbers.
const char* log_simd_arm();

}  // namespace nitho::bench
