// Fig. 4: visualization of Nitho results in the aerial and resist stages.
// One tile per family: [mask | resist GT | TEMPO | DOINN | Nitho resist |
// Nitho aerial] montages, using the models trained on that family.

#include <cstdio>

#include "baselines/image_trainer.hpp"
#include "common.hpp"
#include "io/pgm.hpp"
#include "nitho/fast_litho.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchEnv env(BenchConfig::from_flags(flags));
  std::printf("== Fig. 4: result visualization per dataset ==\n\n");

  const DatasetKind kinds[] = {DatasetKind::B1, DatasetKind::B2m,
                               DatasetKind::B2v};
  const double thr = env.resist_threshold();
  const int px = env.litho().analysis_px;
  for (const DatasetKind kind : kinds) {
    const std::string tag = dataset_name(kind);
    const auto train = sample_ptrs(env.train_set(kind));
    auto tempo = env.trained_tempo(tag, train);
    auto doinn = env.trained_doinn(tag, train);
    auto nitho = env.trained_nitho(tag, train);

    const Sample& s = env.test_set(kind).samples.front();
    const Grid<double> aerial_n = predict_aerial(*nitho, s, px);
    const Grid<double> zt =
        binarize(predict_aerial(*tempo, s, env.cfg().baseline_px, px), thr);
    const Grid<double> zd =
        binarize(predict_aerial(*doinn, s, env.cfg().baseline_px, px), thr);
    const Grid<double> zn = binarize(aerial_n, thr);

    const std::string path = out_dir() + "/fig4_" + tag + ".pgm";
    write_pgm_montage(path, {s.mask_coarse, s.resist, zt, zd, zn, aerial_n});
    std::printf("%-6s  PSNR(aerial) %.2f dB  mIOU(resist) %.4f  -> %s\n",
                tag.c_str(), psnr(s.aerial, aerial_n), miou(s.resist, zn),
                path.c_str());
  }
  std::printf("\nMontage panels: mask | resist GT | TEMPO | DOINN | Nitho "
              "resist | Nitho aerial.\n");
  return 0;
}
