// Fig. 6(a): accuracy vs training-set size.
// Sweeps the training fraction and reports the average PSNR over the B1,
// B2m and B2v test sets for Nitho and both baselines (models are trained on
// the mixed-family training pool, mirroring the paper's protocol of one
// model per training budget).

#include <cstdio>

#include "common.hpp"
#include "io/csv.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchConfig bc = BenchConfig::from_flags(flags);
  // Lighter per-model budgets: this bench trains 3 models x |fractions|.
  bc.nitho_epochs = flags.get_int("nitho-epochs", 40);
  bc.tempo_epochs = flags.get_int("tempo-epochs", 4);
  bc.doinn_epochs = flags.get_int("doinn-epochs", 8);
  BenchEnv env(bc);
  std::printf("== Fig. 6(a): PSNR vs training-set percentage ==\n\n");

  const std::vector<int> fractions =
      flags.get_bool("full") ? std::vector<int>{10, 25, 50, 75, 100}
                             : std::vector<int>{10, 30, 100};

  const int per_family = std::max(4, env.cfg().train_count / 4);
  const auto pool = sample_ptrs({&env.train_set(DatasetKind::B1),
                                 &env.train_set(DatasetKind::B2m),
                                 &env.train_set(DatasetKind::B2v)},
                                per_family);
  const Dataset* tests[3] = {&env.test_set(DatasetKind::B1),
                             &env.test_set(DatasetKind::B2m),
                             &env.test_set(DatasetKind::B2v)};

  CsvWriter csv(out_dir() + "/fig6a_data_efficiency.csv",
                {"fraction_pct", "model", "avg_psnr_db"});
  TablePrinter tp({"Fraction%", "#tiles", "TEMPO", "DOINN", "Nitho"}, 11);

  for (int frac : fractions) {
    const int count =
        std::max<int>(3, static_cast<int>(pool.size()) * frac / 100);
    std::vector<const Sample*> subset(pool.begin(), pool.begin() + count);
    const std::string tag = "mix" + std::to_string(frac);

    auto tempo = env.trained_tempo(tag, subset);
    auto doinn = env.trained_doinn(tag, subset);
    auto nitho = env.trained_nitho(tag, subset);

    double psnr_sum[3] = {0, 0, 0};
    for (const Dataset* t : tests) {
      psnr_sum[0] += env.eval_image(*tempo, *t).psnr / 3.0;
      psnr_sum[1] += env.eval_image(*doinn, *t).psnr / 3.0;
      psnr_sum[2] += env.eval_nitho(*nitho, *t).psnr / 3.0;
    }
    tp.row({std::to_string(frac), std::to_string(count), fmt(psnr_sum[0], 2),
            fmt(psnr_sum[1], 2), fmt(psnr_sum[2], 2)});
    csv.row({std::to_string(frac), "TEMPO", fmt(psnr_sum[0], 3)});
    csv.row({std::to_string(frac), "DOINN", fmt(psnr_sum[1], 3)});
    csv.row({std::to_string(frac), "Nitho", fmt(psnr_sum[2], 3)});
  }
  tp.rule();
  std::printf(
      "\nPaper shape: Nitho at 10%% of the training data already beats the\n"
      "baselines at 100%% (their curves stay below Nitho's leftmost point).\n");
  return 0;
}
