// SIMD kernel microbench (ISSUE 9): same-binary scalar-vs-vector ratios for
// the three gated hot loops — the engine's fused crop/multiply/scatter +
// abs2-accumulate pass, the radix-2 butterfly transform, and the dense GEMM
// microkernels — plus informational rows for the Bluestein path and the
// float abs2 accumulate.  Ratios come from interleaved best-of-reps runs of
// the *identical* workload under force_arm(), so everything except the
// dispatch arm cancels out; bit-identity across arms is pinned by
// tests/test_simd.cpp, this file only measures speed.
//
// Writes bench_out/simd_kernels.csv; gated against
// bench/baselines/simd_kernels.csv by bench/check_baselines.py (floor:
// vs_scalar >= 1.2 on fused_scatter, butterfly_f32 and gemm_nn_dense).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "common.hpp"
#include "common/aligned.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "fft/fft.hpp"
#include "io/csv.hpp"
#include "nn/gemm.hpp"

using namespace nitho;
using namespace nitho::bench;

namespace {

// Best-of-`reps` nanoseconds per call, interleaving the two arms outside so
// thermal / scheduling drift hits both equally.
double measure_ns(const std::function<void()>& fn, int iters, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, t.seconds() * 1e9 / iters);
  }
  return best;
}

struct Workload {
  const char* name;
  std::function<void()> fn;
  int iters;
};

Rng bench_rng(std::uint64_t salt) { return Rng(0xBEEF2023ull + salt); }

template <typename C>
std::vector<C> random_cvec(std::int64_t n, Rng& rng) {
  std::vector<C> v(static_cast<std::size_t>(n));
  for (auto& z : v) {
    z = C(static_cast<typename C::value_type>(rng.normal()),
          static_cast<typename C::value_type>(rng.normal()));
  }
  return v;
}

std::vector<float> random_fvec(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const char* arm = log_simd_arm();
  const int reps = flags.get_int("reps", 7);

  // --- fused scatter: the engine's per-kernel pass minus the FFT ---------
  // (kdim 29 = the paper-scale Eq.-10 kernel support; out 128.)
  const int kdim = 29, out = 128;
  Rng rng = bench_rng(1);
  const auto kern = random_cvec<cd>(kdim * kdim, rng);
  const auto spec = random_cvec<cd>(kdim * kdim, rng);
  aligned_vector<cd> field(static_cast<std::size_t>(out) * out);
  aligned_vector<double> local(static_cast<std::size_t>(out) * out, 0.0);
  const int seg_start = 93;  // a wrapping scatter start, like (e0+sh) % out
  const int seg1 = std::min(kdim, out - seg_start);
  Workload fused{"fused_scatter",
                 [&] {
                   std::fill(field.begin(), field.end(), cd(0.0, 0.0));
                   for (int r = 0; r < kdim; ++r) {
                     const cd* krow = kern.data() + r * kdim;
                     const cd* srow = spec.data() + r * kdim;
                     cd* frow = field.data() +
                                static_cast<std::size_t>((seg_start + r) % out) * out;
                     simd::cmul(frow + seg_start, krow, srow, seg1);
                     simd::cmul(frow, krow + seg1, srow + seg1, kdim - seg1);
                   }
                   simd::abs2_scale_accum(local.data(), field.data(),
                                          16384.0, out * out);
                 },
                 200};

  // --- radix-2 butterflies: whole 512-point transforms -------------------
  // The input is re-copied each call so values stay finite (repeated
  // unnormalized transforms would blow up into the slow non-finite paths).
  const auto sig_d = random_cvec<cd>(512, rng);
  const auto sig_f = random_cvec<cf>(512, rng);
  aligned_vector<cd> buf_d(512);
  aligned_vector<cf> buf_f(512);
  const FftPlan<double>& plan_d = fft_plan_d(512);
  const FftPlan<float>& plan_f = fft_plan_f(512);
  Workload bfly64{"butterfly_f64",
                  [&] {
                    std::memcpy(buf_d.data(), sig_d.data(), 512 * sizeof(cd));
                    plan_d.forward(buf_d.data());
                  },
                  500};
  Workload bfly32{"butterfly_f32",
                  [&] {
                    std::memcpy(buf_f.data(), sig_f.data(), 512 * sizeof(cf));
                    plan_f.forward(buf_f.data());
                  },
                  500};

  // --- Bluestein (prime 509): chirp + convolution over the SIMD stages ---
  const auto sig_b = random_cvec<cd>(509, rng);
  aligned_vector<cd> buf_b(509);
  const FftPlan<double>& plan_b = fft_plan_d(509);
  aligned_vector<cd> scratch_b(static_cast<std::size_t>(plan_b.scratch_size()));
  Workload bluestein{"bluestein_f64",
                     [&] {
                       std::memcpy(buf_b.data(), sig_b.data(),
                                   509 * sizeof(cd));
                       plan_b.forward(buf_b.data(), scratch_b.data());
                     },
                     200};

  // --- dense GEMM microkernels (CMLP-shaped, serial path) ----------------
  const std::int64_t gm = 48, gn = 48, gk = 48;
  const auto ga = random_fvec(gm * gk, rng);
  const auto gb = random_fvec(gk * gn, rng);
  const auto gbt = random_fvec(gn * gk, rng);
  std::vector<float> gc(static_cast<std::size_t>(gm * gn));
  Workload gemm_nn{"gemm_nn_dense",
                   [&] {
                     nn::gemm_nn<false>(gm, gn, gk, ga.data(), gb.data(),
                                        gc.data(), false);
                   },
                   400};
  Workload gemm_nt{"gemm_nt_dense",
                   [&] {
                     nn::gemm_nt(gm, gn, gk, ga.data(), gbt.data(), gc.data(),
                                 false);
                   },
                   400};

  // --- float abs2 accumulate (training intensity pass) -------------------
  const auto plane_e = random_fvec(2 * 64 * 64, rng);
  std::vector<float> plane_acc(64 * 64);
  Workload abs2{"abs2_accum_f32",
                [&] {
                  std::fill(plane_acc.begin(), plane_acc.end(), 0.0f);
                  simd::abs2_accum(plane_acc.data(), plane_e.data(), 64 * 64);
                },
                2000};

  const Workload* workloads[] = {&fused,   &bfly64,  &bfly32, &bluestein,
                                 &gemm_nn, &gemm_nt, &abs2};

  std::printf("== SIMD kernel microbench (best of %d reps) ==\n\n", reps);
  TablePrinter tp({"kernel", "scalar ns", "simd ns", "vs_scalar"}, 14);
  CsvWriter csv(out_dir() + "/simd_kernels.csv",
                {"kernel", "scalar_ns", "simd_ns", "vs_scalar", "arm"});
  const simd::Arm best = simd::detected_arm();
  for (const Workload* w : workloads) {
    // Warm caches and the dispatch atomic under both arms first.
    simd::force_arm(simd::Arm::kScalar);
    w->fn();
    simd::force_arm(best);
    w->fn();
    double scalar_ns = 1e30, simd_ns = 1e30;
    for (int r = 0; r < reps; ++r) {
      simd::force_arm(simd::Arm::kScalar);
      scalar_ns = std::min(scalar_ns, measure_ns(w->fn, w->iters, 1));
      simd::force_arm(best);
      simd_ns = std::min(simd_ns, measure_ns(w->fn, w->iters, 1));
    }
    simd::force_arm(best);
    const double ratio = scalar_ns / simd_ns;
    tp.row({w->name, fmt(scalar_ns, 0), fmt(simd_ns, 0), fmt(ratio, 2)});
    csv.row({w->name, fmt(scalar_ns, 0), fmt(simd_ns, 0), fmt(ratio, 2),
             arm});
  }
  tp.rule();
  std::printf(
      "\nGate (check_baselines.py): vs_scalar >= 1.2 on fused_scatter, "
      "butterfly_f32, gemm_nn_dense.\n");
  return 0;
}
