// Seeded violation for lint_bit_identity --self-test: R3 must flag
// reductions whose summation order is unspecified.
#include <execution>
#include <numeric>
#include <vector>

double bad_sum(const std::vector<double>& v) {
  return std::reduce(v.begin(), v.end(), 0.0);  // R3: unordered
}

double bad_par_sum(const std::vector<double>& v) {
  return std::reduce(std::execution::par_unseq, v.begin(), v.end(), 0.0);
}

double bad_transform_reduce(const std::vector<double>& v) {
  return std::transform_reduce(v.begin(), v.end(), v.begin(), 0.0);
}
