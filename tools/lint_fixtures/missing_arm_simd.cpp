// R4 fixture (lint_bit_identity --self-test): a miniature simd.cpp with two
// kernels.  `waxpy` has a per-arm test in missing_arm_test_simd.cpp;
// `frobnicate` does not and must be flagged.
namespace fixture {

void waxpy_sse2(float* y, const float* x, float a, int n) {
  for (int i = 0; i < n; ++i) y[i] += a * x[i];
}

void waxpy_avx2(float* y, const float* x, float a, int n) {
  for (int i = 0; i < n; ++i) y[i] += a * x[i];
}

void frobnicate_sse2(float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] = -y[i];
}

void frobnicate2_avx2(float* y, int n) {  // helper lane: same base kernel
  for (int i = 0; i < n; ++i) y[i] = -y[i];
}

}  // namespace fixture
