// Seeded violation for lint_bit_identity --self-test: R2 must flag a local
// re-enable of FP contraction even though the flag never appears.
#pragma STDC FP_CONTRACT ON

double locally_contracted(double x, double y, double z) {
  return x * y + z;  // compiler may now fuse this despite -ffp-contract=off
}
