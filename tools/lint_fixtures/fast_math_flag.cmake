# Seeded violation for lint_bit_identity --self-test: R2 must flag
# fast-math / contraction flags in build configuration.
add_compile_options(-O2 -ffast-math)
target_compile_options(fixture PRIVATE -ffp-contract=fast)
