// Clean fixture for lint_bit_identity --self-test: every forbidden token
// below lives in a comment or a string literal, so the linter must stay
// quiet — this pins the comment/string stripping pass.
//
// Discussing std::fma(a, b, c) in prose is fine; so is explaining why
// -ffast-math and std::reduce( are banned.
#include <string>

/* Block comments too: __builtin_fma(x, y, z) must not fire,
   nor -ffp-contract=fast mentioned mid-paragraph. */

std::string docs() {
  return "never call std::fma(a, b, c) or pass -ffast-math; "
         "std::execution::par is also banned";
}

double good_mul_add(double x, double y, double z) {
  return x * y + z;  // two roundings under -ffp-contract=off
}
