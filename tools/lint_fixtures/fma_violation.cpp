// Seeded violation for lint_bit_identity --self-test: R1 must flag every
// fused-multiply-add spelling below.  Never compiled, never linted as part
// of the real tree (tools/ is outside the linter's src/ walk).
#include <cmath>

double bad_dot(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc = std::fma(a[i], b[i], acc);  // R1: single rounding
  }
  return acc;
}

float bad_dot_f(float x, float y, float z) {
  return fmaf(x, y, z);  // R1: C spelling
}

double bad_builtin(double x, double y, double z) {
  return __builtin_fma(x, y, z);  // R1: builtin spelling
}
