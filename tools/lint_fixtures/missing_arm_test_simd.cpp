// R4 fixture (lint_bit_identity --self-test): the matching miniature
// test_simd.cpp.  It drives `waxpy` under for_each_vector_arm but never
// touches `frobnicate`, so the linter must flag exactly the latter.
namespace fixture {

void for_each_vector_arm(void (*fn)()) { fn(); }

void check_waxpy() {
  float y[4] = {0, 0, 0, 0};
  float x[4] = {1, 2, 3, 4};
  waxpy(y, x, 2.0f, 4);
}

}  // namespace fixture
