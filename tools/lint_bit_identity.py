#!/usr/bin/env python3
"""Bit-identity-protocol linter (DESIGN.md §14.4).

The serving stack's correctness story leans on a floating-point protocol the
compiler cannot check by itself (PRs 2-9, DESIGN.md §13): no FMA anywhere,
no fast-math flags leaking into any target, ordered reductions only, and a
per-arm bit-identity test for every SIMD kernel.  This linter turns each of
those conventions into a CI failure:

  R1 fma-call            std::fma / fmaf / fmal / __builtin_fma* calls in
                         src/ — contracted multiply-add rounds once where
                         the protocol requires twice.
  R2 fast-math-drift     -ffast-math, -funsafe-math-optimizations, -Ofast,
                         -ffp-contract=fast|on, or `#pragma STDC
                         FP_CONTRACT ON` in src/ or the build config; also
                         requires the root CMakeLists.txt to keep the
                         project-wide -ffp-contract=off pin.
  R3 unordered-reduction std::reduce / std::transform_reduce /
                         std::execution::par* in src/ — their summation
                         order is unspecified, so results are not
                         reproducible bit for bit.
  R4 simd-arm-coverage   every `<kernel>_sse2` / `<kernel>_avx2` arm
                         defined in src/common/simd.cpp must have its
                         dispatcher exercised in tests/test_simd.cpp
                         (which must drive arms via for_each_vector_arm).

Matching is regex AST-lite over comment- and string-stripped sources — no
libclang dependency.  To extend: add a Rule to RULES (R1-R3 style token
rules), or grow check_simd_coverage for structural checks; add a fixture
pair under tools/lint_fixtures/ and list the expectation in SELF_TESTS so
--self-test proves the new rule both fires and stays quiet.

Usage:
  lint_bit_identity.py --root <repo>   # lint the tree (CI + ctest)
  lint_bit_identity.py --self-test     # prove the rules fire on seeded
                                       # violations and stay quiet on clean
                                       # fixtures
Exit status: 0 clean, 1 violations (or a self-test expectation failed).
"""

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx", ".inl"}


def strip_cpp(text):
    """Removes comments and string/char literals, preserving line structure.

    Newlines inside block comments survive so violation line numbers stay
    exact; everything else stripped becomes a space so token boundaries
    cannot fuse.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
            out.append(" ")
        elif ch == '"' or ch == "'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
            out.append(" ")
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Rule:
    def __init__(self, rule_id, pattern, message, strip=True):
        self.rule_id = rule_id
        self.pattern = re.compile(pattern)
        self.message = message
        self.strip = strip  # comment/string-strip before matching (C++ only)


# Token rules over src/.  R2's flag tokens also run over the build config
# (CMakeLists.txt / CMakePresets.json / *.cmake), unstripped — cmake
# comments start with '#', which strip_cpp would not touch anyway, and a
# fast-math flag in a commented-out line is still one edit from live.
RULES = [
    Rule("R1 fma-call",
         r"\b(?:std\s*::\s*)?fma[fl]?\s*\(|__builtin_fma\w*\s*\(",
         "FMA rounds mul+add once; the bit-identity protocol requires "
         "two roundings (DESIGN.md §13.1)"),
    Rule("R2 fast-math-drift",
         r"-ffast-math|-funsafe-math-optimizations|-Ofast\b"
         r"|-ffp-contract=(?:fast|on)\b",
         "fast-math / contraction flags break cross-arm and cross-build "
         "bit-identity"),
    Rule("R2 fast-math-drift",
         r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+ON",
         "re-enabling FP contraction locally defeats the project-wide "
         "-ffp-contract=off pin",
         strip=False),
    Rule("R3 unordered-reduction",
         r"\bstd\s*::\s*(?:transform_)?reduce\s*\("
         r"|\bstd\s*::\s*execution\s*::\s*par\w*",
         "unspecified reduction order is not reproducible bit for bit; "
         "use the ordered chunked reduction (litho::reduce_ordered / "
         "DESIGN.md §6.3)"),
]

FLAG_RULE_IDS = {"R2 fast-math-drift"}

ARM_DEF_RE = re.compile(r"\b(\w+?)_(?:sse2|avx2)(?:_t)?\s*\(")


def base_kernel_name(name):
    """cmul1/cmul2/cmul4 -> cmul: helper lanes collapse onto their kernel."""
    return re.sub(r"\d+$", "", name)


def lint_text(path, text, rules, violations):
    stripped = None
    for rule in rules:
        subject = text
        if rule.strip and path.suffix in CPP_SUFFIXES:
            if stripped is None:
                stripped = strip_cpp(text)
            subject = stripped
        for m in rule.pattern.finditer(subject):
            line = subject.count("\n", 0, m.start()) + 1
            violations.append(
                f"{path}:{line}: [{rule.rule_id}] `{m.group(0).strip()}` "
                f"— {rule.message}")


def check_simd_coverage(simd_cpp, test_simd_cpp, violations,
                        label="src/common/simd.cpp"):
    simd_src = strip_cpp(simd_cpp.read_text())
    test_src = strip_cpp(test_simd_cpp.read_text())
    if "for_each_vector_arm" not in test_src:
        violations.append(
            f"{test_simd_cpp}:1: [R4 simd-arm-coverage] the per-arm driver "
            "for_each_vector_arm is gone — without it no kernel is pinned "
            "on every arm")
        return
    kernels = sorted({base_kernel_name(m.group(1))
                      for m in ARM_DEF_RE.finditer(simd_src)})
    for kernel in kernels:
        if not re.search(rf"\b{re.escape(kernel)}\s*\(", test_src):
            violations.append(
                f"{label}:1: [R4 simd-arm-coverage] kernel `{kernel}` has "
                f"sse2/avx2 arms but no per-arm bit-identity test in "
                f"{test_simd_cpp.name} (drive it under for_each_vector_arm)")


def lint_tree(root):
    root = pathlib.Path(root)
    violations = []
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix in CPP_SUFFIXES:
            lint_text(path, path.read_text(errors="replace"), RULES,
                      violations)
    flag_rules = [r for r in RULES if r.rule_id in FLAG_RULE_IDS]
    config_files = [root / "CMakeLists.txt", root / "CMakePresets.json"]
    config_files += sorted(root.rglob("*.cmake"))
    for path in config_files:
        # Skip build trees and the linter's own seeded-violation fixtures.
        if any(p.startswith("build") or p == "lint_fixtures"
               for p in path.parts):
            continue
        if path.is_file():
            lint_text(path, path.read_text(errors="replace"), flag_rules,
                      violations)
    cml = root / "CMakeLists.txt"
    if cml.is_file() and "-ffp-contract=off" not in cml.read_text():
        violations.append(
            f"{cml}:1: [R2 fast-math-drift] the project-wide "
            "-ffp-contract=off pin is missing — scalar arms may silently "
            "contract mul+add into FMA")
    simd_cpp = root / "src" / "common" / "simd.cpp"
    test_simd = root / "tests" / "test_simd.cpp"
    if simd_cpp.is_file() and test_simd.is_file():
        check_simd_coverage(simd_cpp, test_simd, violations)
    return violations


# (fixture, expected rule id or None-for-clean).  Fixtures live in
# tools/lint_fixtures/; the self-test proves every rule both fires on its
# seeded violation and stays quiet where it must.
SELF_TESTS = [
    ("fma_violation.cpp", "R1 fma-call"),
    ("fast_math_flag.cmake", "R2 fast-math-drift"),
    ("fp_contract_pragma.cpp", "R2 fast-math-drift"),
    ("unordered_reduction.cpp", "R3 unordered-reduction"),
    ("comment_mention_clean.cpp", None),
]


def run_self_test():
    failures = []
    for name, expected in SELF_TESTS:
        path = FIXTURES / name
        violations = []
        rules = RULES
        lint_text(path, path.read_text(), rules, violations)
        hit_ids = {v.split("[")[1].split("]")[0] for v in violations}
        if expected is None:
            if violations:
                failures.append(f"{name}: expected clean, got {violations}")
        elif expected not in hit_ids:
            failures.append(
                f"{name}: expected [{expected}] to fire, got {hit_ids or 'nothing'}")

    # R4: a kernel with vector arms but no per-arm test must be flagged...
    violations = []
    check_simd_coverage(FIXTURES / "missing_arm_simd.cpp",
                        FIXTURES / "missing_arm_test_simd.cpp", violations,
                        label="missing_arm_simd.cpp")
    if not any("[R4 simd-arm-coverage]" in v and "`frobnicate`" in v
               for v in violations):
        failures.append(
            f"missing_arm fixture: expected [R4] on `frobnicate`, got "
            f"{violations or 'nothing'}")
    # ...and the covered kernel in the same fixture must NOT be flagged.
    if any("`waxpy`" in v for v in violations):
        failures.append("missing_arm fixture: covered kernel waxpy flagged")

    # The real tree must currently be green, so CI cannot go red on the
    # lint job without an actual protocol regression.
    tree = lint_tree(REPO_ROOT)
    if tree:
        failures.append("repository tree is not lint-clean:\n  " +
                        "\n  ".join(tree))

    if failures:
        print("lint_bit_identity self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint_bit_identity self-test OK "
          f"({len(SELF_TESTS) + 2} expectations)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=str(REPO_ROOT),
                    help="repository root to lint (default: this repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the rules against the seeded fixtures")
    args = ap.parse_args()
    if args.self_test:
        return run_self_test()
    violations = lint_tree(args.root)
    if violations:
        print(f"lint_bit_identity: {len(violations)} violation(s):",
              file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("lint_bit_identity: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
